//! Golden single-chip reference implementations of the Transformer block.
//!
//! These functions compute the *values* a correct execution must produce.
//! The distributed functional executor in `mtp-core` re-uses the same
//! per-head primitives on its weight slices and is verified to match
//! [`block_forward`] numerically — that equivalence is the correctness
//! argument for the partitioning scheme.

use crate::{Activation, AttentionKind, BlockWeights, KvCache, NormKind, TransformerConfig};
use mtp_kernels as kernels;
use mtp_tensor::{Result, Shape, Tensor};

/// Attention visibility mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttnMask {
    /// Every query sees every key (encoder).
    None,
    /// Query row `i` sees key rows `j <= q_offset + i` (decoder; with a
    /// KV-cache the single query row has `q_offset = kv_len - 1`).
    Causal {
        /// Absolute position of query row 0 within the key sequence.
        q_offset: usize,
    },
}

/// Multi-head scaled-dot-product attention over a *slab* of heads, with
/// grouped-query support.
///
/// `q` is `[S_q x (h*P)]` holding `h` contiguous query heads of width
/// `head_dim = P`; `k`/`v` are `[S_kv x (h_kv*P)]` holding `h_kv` key/value
/// heads, where `h_kv` divides `h` (classic multi-head attention is the
/// `h_kv == h` case). Query head `i` attends against K/V head
/// `i / (h / h_kv)`. Returns the `[S_q x (h*P)]` attention output.
///
/// This is the primitive both the golden model (all heads) and each chip of
/// the distributed system (its head slice) execute — head computations are
/// fully independent, which is why the paper partitions along `H`.
///
/// # Errors
///
/// Never fails (the `Result` is kept for call-site compatibility).
///
/// # Panics
///
/// Panics when a column count is not a multiple of `head_dim`, when the
/// K/V head count does not divide the query head count, or when `k` and
/// `v` shapes disagree.
pub fn attention_heads(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    head_dim: usize,
    mask: AttnMask,
) -> Result<Tensor> {
    let mut scratch = AttnScratch::default();
    let mut out = Tensor::default();
    attention_heads_into(q, k, v, head_dim, mask, &mut scratch, &mut out);
    Ok(out)
}

/// Reusable buffers for [`attention_heads_into`]: one `[S_q x S_kv]`
/// score matrix, recycled across heads, layers, and decode steps.
#[derive(Debug, Clone, Default)]
pub struct AttnScratch {
    scores: Tensor,
}

/// [`attention_heads`] into a caller-owned output, allocation-free in
/// steady state: head slabs are addressed in place (strided) instead of
/// being split into per-head copies, the score matrix lives in `scratch`,
/// and `out` is resized in place.
///
/// Every accumulation runs in the same ascending-`k` [`mtp_tensor::madd`]
/// order as the blocked matmul kernels, so the result is bit-identical to
/// the split/concat formulation this replaced.
///
/// # Panics
///
/// Panics when a column count is not a multiple of `head_dim`, when the
/// K/V head count does not divide the query head count, or when `k` and
/// `v` shapes disagree.
pub fn attention_heads_into(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    head_dim: usize,
    mask: AttnMask,
    scratch: &mut AttnScratch,
    out: &mut Tensor,
) {
    let width = q.shape().cols();
    let kv_width = k.shape().cols();
    assert_eq!(k.shape(), v.shape(), "k and v must share one [S_kv x width] shape");
    assert!(width.is_multiple_of(head_dim), "q columns must be a whole number of heads");
    assert!(kv_width.is_multiple_of(head_dim), "k/v columns must be a whole number of heads");
    let n_heads = width / head_dim;
    let n_kv_heads = kv_width / head_dim;
    assert!(
        n_kv_heads > 0 && n_heads.is_multiple_of(n_kv_heads),
        "k/v heads must divide query heads"
    );
    let group = n_heads / n_kv_heads;
    let (sq, skv) = (q.shape().rows(), k.shape().rows());
    let scale = 1.0 / (head_dim as f32).sqrt();
    // `out` accumulates (so it must start zeroed); the score matrix is
    // fully overwritten every head, so its resize skips the memset.
    out.resize_to(Shape::mat(sq, width));
    scratch.scores.resize_for_overwrite(Shape::mat(sq, skv));
    if sq == 0 || skv == 0 {
        return;
    }
    let be = mtp_tensor::active();
    for h in 0..n_heads {
        let q_off = h * head_dim;
        let kv_off = (h / group) * head_dim;
        // scores = scale * (q_h @ k_h^T): head slabs addressed in place
        // (strided), dispatched to the active backend. Chains stay in
        // ascending key order on every backend, so this is bit-identical
        // to the scalar loop it replaced.
        be.scaled_dot_t(
            &q.as_slice()[q_off..],
            width,
            &k.as_slice()[kv_off..],
            kv_width,
            scale,
            scratch.scores.as_mut_slice(),
            sq,
            head_dim,
            skv,
        );
        if let AttnMask::Causal { q_offset } = mask {
            for i in 0..sq {
                for j in (q_offset + i + 1)..skv {
                    scratch.scores.set(i, j, f32::NEG_INFINITY);
                }
            }
        }
        kernels::softmax_rows_inplace(&mut scratch.scores);
        // out_h += probs @ v_h, accumulated in ascending key order via the
        // backend's strided GEMM (accumulate = true onto the zeroed out).
        be.gemm_strided(
            scratch.scores.as_slice(),
            skv,
            &v.as_slice()[kv_off..],
            kv_width,
            &mut out.as_mut_slice()[q_off..],
            width,
            sq,
            skv,
            head_dim,
            true,
        );
    }
}

/// Applies rotary embeddings head-by-head to a `[S x (h*P)]` slab whose
/// rows start at absolute position `pos0`. The steady-state paths mutate
/// their slabs directly with [`kernels::rope_heads_inplace`]; this
/// copying wrapper remains for callers that need the input preserved.
///
/// # Errors
///
/// Never fails (the `Result` is kept for call-site compatibility);
/// malformed head widths panic as in [`kernels::rope_heads_inplace`].
pub fn apply_rope_heads(t: &Tensor, head_dim: usize, pos0: usize) -> Result<Tensor> {
    let mut out = t.clone();
    kernels::rope_heads_inplace(&mut out, head_dim, pos0);
    Ok(out)
}

/// Row-wise normalization of `t` according to the model's [`NormKind`].
#[must_use]
pub fn normalize(t: &Tensor, kind: NormKind, gamma: &[f32], beta: &[f32]) -> Tensor {
    let mut out = t.clone();
    normalize_inplace(&mut out, kind, gamma, beta);
    out
}

/// In-place [`normalize`] (identical arithmetic, no output allocation).
pub fn normalize_inplace(t: &mut Tensor, kind: NormKind, gamma: &[f32], beta: &[f32]) {
    match kind {
        NormKind::LayerNorm => kernels::layer_norm_inplace(t, gamma, beta, 1e-5),
        NormKind::RmsNorm => kernels::rms_norm_inplace(t, gamma, 1e-6),
    }
}

/// The FFN: `act(y @ W1) @ W2`.
///
/// # Errors
///
/// Propagates matmul shape mismatches.
pub fn ffn(y: &Tensor, w: &BlockWeights, activation: Activation) -> Result<Tensor> {
    let h = y.try_matmul(&w.w1)?;
    let a = match activation {
        Activation::Gelu => kernels::gelu(&h),
        Activation::Silu => kernels::silu(&h),
    };
    a.try_matmul(&w.w2)
}

/// Full-width MHSA for input `x` (`[S x E]`), optionally updating a
/// KV-cache for autoregressive decoding.
///
/// With `cache = Some(..)`, `x` must be a single row (one new token); the
/// new key/value rows are appended and attention runs over the whole cache.
/// Without a cache, attention runs over `x` itself (prompt/encoder pass).
///
/// # Errors
///
/// Propagates tensor shape mismatches.
pub fn mhsa(
    x: &Tensor,
    w: &BlockWeights,
    cfg: &TransformerConfig,
    cache: Option<&mut KvCache>,
) -> Result<Tensor> {
    let head_dim = cfg.head_dim();
    let rope = cfg.attention == AttentionKind::CausalRope;
    let mut q = x.try_matmul(&w.wq)?;
    let mut k = x.try_matmul(&w.wk)?;
    let v = x.try_matmul(&w.wv)?;
    let pos0 = cache.as_deref().map_or(0, KvCache::len);
    if rope {
        kernels::rope_heads_inplace(&mut q, head_dim, pos0);
        kernels::rope_heads_inplace(&mut k, head_dim, pos0);
    }
    let attn = match cache {
        Some(cache) => {
            debug_assert_eq!(x.shape().rows(), 1, "cached decoding processes one token");
            cache.append(k.row(0), v.row(0));
            let mask = AttnMask::Causal { q_offset: cache.len() - 1 };
            attention_heads(&q, &cache.keys(), &cache.values(), head_dim, mask)?
        }
        None => {
            let mask = match cfg.attention {
                AttentionKind::Bidirectional => AttnMask::None,
                AttentionKind::CausalRope => AttnMask::Causal { q_offset: 0 },
            };
            attention_heads(&q, &k, &v, head_dim, mask)?
        }
    };
    attn.try_matmul(&w.wo)
}

/// One full Transformer block (post-norm, as described in the paper):
///
/// ```text
/// y = Norm(x + MHSA(x));  z = Norm(y + FFN(y))
/// ```
///
/// # Errors
///
/// Propagates tensor shape mismatches.
pub fn block_forward(
    x: &Tensor,
    w: &BlockWeights,
    cfg: &TransformerConfig,
    cache: Option<&mut KvCache>,
) -> Result<Tensor> {
    let attn = mhsa(x, w, cfg, cache)?;
    let y = normalize(&x.try_add(&attn)?, cfg.norm, &w.norm1_gamma, &w.norm1_beta);
    let f = ffn(&y, w, cfg.activation)?;
    Ok(normalize(&y.try_add(&f)?, cfg.norm, &w.norm2_gamma, &w.norm2_beta))
}

/// Deterministic pseudo-random activation matrix used by tests, examples,
/// and the harness as a stand-in for token embeddings.
#[must_use]
pub fn synthetic_input(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_fn(Shape::mat(rows, cols), |(r, c)| {
        // A cheap splitmix-style hash for reproducible, well-spread values.
        let mut z =
            seed.wrapping_add(r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(c as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z >> 40) as f32 / (1 << 24) as f32) * 2.0 - 1.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TransformerConfig {
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.embed_dim = 32;
        cfg.ffn_dim = 64;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 4;
        cfg.n_layers = 2;
        cfg.seq_len = 8;
        cfg
    }

    #[test]
    fn attention_rows_are_convex_combinations_of_values() {
        // With mask None and any scores, output rows lie in the convex hull
        // of the value rows; with constant V the output equals V's row.
        let q = synthetic_input(3, 8, 1);
        let k = synthetic_input(5, 8, 2);
        let v = Tensor::from_fn(Shape::mat(5, 8), |(_, c)| c as f32);
        let out = attention_heads(&q, &k, &v, 4, AttnMask::None).unwrap();
        for r in 0..3 {
            for c in 0..8 {
                assert!((out.at(r, c) - c as f32).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn causal_mask_blocks_future() {
        // Make value row 1 huge; query row 0 must not see it.
        let q = Tensor::zeros(Shape::mat(2, 4));
        let k = Tensor::zeros(Shape::mat(2, 4));
        let mut v = Tensor::zeros(Shape::mat(2, 4));
        for c in 0..4 {
            v.set(1, c, 1000.0);
        }
        let out = attention_heads(&q, &k, &v, 4, AttnMask::Causal { q_offset: 0 }).unwrap();
        assert_eq!(out.at(0, 0), 0.0, "row 0 only sees kv row 0");
        assert_eq!(out.at(1, 0), 500.0, "row 1 averages rows 0 and 1");
    }

    #[test]
    fn head_independence() {
        // Computing all heads at once equals computing head slabs
        // separately and concatenating — the partitioning scheme's premise.
        let q = synthetic_input(4, 16, 3);
        let k = synthetic_input(6, 16, 4);
        let v = synthetic_input(6, 16, 5);
        let all = attention_heads(&q, &k, &v, 4, AttnMask::None).unwrap();
        let (qs, ks, vs) =
            (q.split_cols(2).unwrap(), k.split_cols(2).unwrap(), v.split_cols(2).unwrap());
        let parts: Vec<Tensor> = (0..2)
            .map(|i| attention_heads(&qs[i], &ks[i], &vs[i], 4, AttnMask::None).unwrap())
            .collect();
        let glued = Tensor::concat_cols(&parts).unwrap();
        assert!(all.approx_eq(&glued, 1e-5).unwrap());
    }

    #[test]
    fn cached_decoding_matches_prompt_pass() {
        // Running S tokens one-by-one through the cache must equal the
        // single causal prompt pass, row for row.
        let cfg = small_cfg();
        let w = BlockWeights::seeded(&cfg, 9);
        let x = synthetic_input(6, cfg.embed_dim, 11);
        let prompt_out = mhsa(&x, &w, &cfg, None).unwrap();
        let mut cache = KvCache::new(cfg.embed_dim, 16);
        let mut step_rows = Vec::new();
        for r in 0..6 {
            let row = Tensor::from_vec(Shape::mat(1, cfg.embed_dim), x.row(r).to_vec()).unwrap();
            let out = mhsa(&row, &w, &cfg, Some(&mut cache)).unwrap();
            step_rows.push(out);
        }
        for (r, out) in step_rows.iter().enumerate() {
            let want =
                Tensor::from_vec(Shape::mat(1, cfg.embed_dim), prompt_out.row(r).to_vec()).unwrap();
            assert!(out.approx_eq(&want, 1e-4).unwrap(), "row {r} diverged");
        }
    }

    #[test]
    fn block_forward_is_finite_and_normalized() {
        let cfg = small_cfg();
        let w = BlockWeights::seeded(&cfg, 21);
        let x = synthetic_input(8, cfg.embed_dim, 13);
        let z = block_forward(&x, &w, &cfg, None).unwrap();
        assert_eq!(z.shape(), x.shape());
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
        // Post-norm RMS ~ 1 per row.
        let ms: f32 = z.row(0).iter().map(|v| v * v).sum::<f32>() / cfg.embed_dim as f32;
        assert!((ms - 1.0).abs() < 0.1);
    }

    #[test]
    fn encoder_block_has_no_mask_effect_on_symmetry() {
        let mut cfg = small_cfg();
        cfg.attention = AttentionKind::Bidirectional;
        cfg.norm = NormKind::LayerNorm;
        let w = BlockWeights::seeded(&cfg, 2);
        let x = synthetic_input(5, cfg.embed_dim, 3);
        let out = block_forward(&x, &w, &cfg, None).unwrap();
        assert_eq!(out.shape(), x.shape());
    }

    #[test]
    fn synthetic_input_is_deterministic_and_bounded() {
        let a = synthetic_input(4, 4, 1);
        let b = synthetic_input(4, 4, 1);
        assert_eq!(a, b);
        assert!(a.max_abs() <= 1.0);
        assert_ne!(a, synthetic_input(4, 4, 2));
    }
}
