//! Transformer architecture configurations.

use mtp_tensor::Dtype;
use serde::{Deserialize, Serialize};

/// Row-wise normalization flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormKind {
    /// LayerNorm (BERT-family).
    LayerNorm,
    /// RMSNorm (Llama-family).
    RmsNorm,
}

/// FFN activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Gaussian Error Linear Unit (the paper's FC description).
    Gelu,
    /// SiLU (`x * sigmoid(x)`).
    Silu,
}

/// Attention variant: bidirectional encoder or causal decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionKind {
    /// Bidirectional (encoder-only models such as MobileBERT).
    Bidirectional,
    /// Causal with rotary position embeddings (decoder-only, Llama-style).
    CausalRope,
}

/// Inference mode of a decoder-only model (paper Sec. II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InferenceMode {
    /// Token-by-token generation with a KV-cache; GEMV-dominated.
    Autoregressive,
    /// All prompt tokens processed in one pass; GEMM-dominated.
    Prompt,
}

impl std::fmt::Display for InferenceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferenceMode::Autoregressive => write!(f, "autoregressive"),
            InferenceMode::Prompt => write!(f, "prompt"),
        }
    }
}

/// Architectural parameters of a Transformer model.
///
/// Dimension names follow the paper: sequence length `S`, embedding
/// dimension `E`, per-head projection dimension `P`, head count `H`,
/// FFN intermediate dimension `F`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Human-readable model name.
    pub name: String,
    /// Embedding dimension `E`.
    pub embed_dim: usize,
    /// Number of query attention heads `H`.
    pub n_heads: usize,
    /// Number of key/value heads (grouped-query attention). Equal to
    /// `n_heads` for classic multi-head attention; smaller values shrink
    /// both the K/V projection weights and the KV-cache, which directly
    /// relaxes the on-chip residency thresholds.
    pub n_kv_heads: usize,
    /// FFN intermediate dimension `F`.
    pub ffn_dim: usize,
    /// Number of Transformer blocks.
    pub n_layers: usize,
    /// Default sequence length `S` for this workload.
    pub seq_len: usize,
    /// Normalization flavour.
    pub norm: NormKind,
    /// FFN activation.
    pub activation: Activation,
    /// Attention variant.
    pub attention: AttentionKind,
    /// Deployment precision of weights and activations.
    pub dtype: Dtype,
}

impl TransformerConfig {
    /// The TinyLlama-42M decoder the paper deploys: `E = 512`, `F = 2048`,
    /// 8 layers, 8 heads, int8, KV-cache sequence length 128 in
    /// autoregressive mode.
    #[must_use]
    pub fn tiny_llama_42m() -> Self {
        TransformerConfig {
            name: "TinyLlama-42M".to_owned(),
            embed_dim: 512,
            n_heads: 8,
            n_kv_heads: 8,
            ffn_dim: 2048,
            n_layers: 8,
            seq_len: 128,
            norm: NormKind::RmsNorm,
            activation: Activation::Gelu,
            attention: AttentionKind::CausalRope,
            dtype: Dtype::Int8,
        }
    }

    /// The scalability-study variant: 64 heads, everything else unchanged
    /// (paper Sec. V-C).
    #[must_use]
    pub fn tiny_llama_scaled_64h() -> Self {
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.name = "TinyLlama-42M-64h".to_owned();
        cfg.n_heads = 64;
        cfg.n_kv_heads = 64;
        cfg
    }

    /// A grouped-query variant of TinyLlama (extension beyond the paper):
    /// 8 query heads sharing `n_kv_heads` key/value heads, shrinking the
    /// K/V weights and KV-cache by `8 / n_kv_heads`.
    ///
    /// # Panics
    ///
    /// Panics when `n_kv_heads` does not divide 8.
    #[must_use]
    pub fn tiny_llama_gqa(n_kv_heads: usize) -> Self {
        assert!(8 % n_kv_heads == 0, "kv heads must divide the 8 query heads");
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.name = format!("TinyLlama-42M-gqa{n_kv_heads}");
        cfg.n_kv_heads = n_kv_heads;
        cfg
    }

    /// A depth-scaled TinyLlama variant (extension beyond the paper):
    /// the TinyLlama-42M block replicated `n_layers` times, modelling the
    /// deep decoder stacks (96+ blocks) that periodic steady-state
    /// simulation makes cheap to study.
    ///
    /// # Panics
    ///
    /// Panics when `n_layers` is zero.
    #[must_use]
    pub fn tiny_llama_deep(n_layers: usize) -> Self {
        assert!(n_layers > 0, "a model needs at least one layer");
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.name = format!("TinyLlama-42M-d{n_layers}");
        cfg.n_layers = n_layers;
        cfg
    }

    /// A depth-scaled MobileBERT variant: the MobileBERT block replicated
    /// `n_layers` times.
    ///
    /// # Panics
    ///
    /// Panics when `n_layers` is zero.
    #[must_use]
    pub fn mobile_bert_deep(n_layers: usize) -> Self {
        assert!(n_layers > 0, "a model needs at least one layer");
        let mut cfg = TransformerConfig::mobile_bert();
        cfg.name = format!("MobileBERT-d{n_layers}");
        cfg.n_layers = n_layers;
        cfg
    }

    /// The MobileBERT encoder workload: `E = F = 512`, 4 heads, sequence
    /// length 268 (paper Sec. V-A).
    #[must_use]
    pub fn mobile_bert() -> Self {
        TransformerConfig {
            name: "MobileBERT".to_owned(),
            embed_dim: 512,
            n_heads: 4,
            n_kv_heads: 4,
            ffn_dim: 512,
            n_layers: 24,
            seq_len: 268,
            norm: NormKind::LayerNorm,
            activation: Activation::Gelu,
            attention: AttentionKind::Bidirectional,
            dtype: Dtype::Int8,
        }
    }

    /// Per-head projection dimension `P = E / H`.
    ///
    /// # Panics
    ///
    /// Panics when `n_heads` does not divide `embed_dim` (an invalid
    /// configuration; [`TransformerConfig::validate`] reports it as an
    /// error instead).
    #[must_use]
    pub fn head_dim(&self) -> usize {
        assert!(
            self.embed_dim.is_multiple_of(self.n_heads),
            "head count must divide the embedding dimension"
        );
        self.embed_dim / self.n_heads
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.embed_dim == 0 || self.n_heads == 0 || self.ffn_dim == 0 || self.n_layers == 0 {
            return Err("all dimensions must be non-zero".to_owned());
        }
        if !self.embed_dim.is_multiple_of(self.n_heads) {
            return Err(format!(
                "heads ({}) must divide embedding dim ({})",
                self.n_heads, self.embed_dim
            ));
        }
        if self.n_kv_heads == 0 || !self.n_heads.is_multiple_of(self.n_kv_heads) {
            return Err(format!(
                "kv heads ({}) must divide query heads ({})",
                self.n_kv_heads, self.n_heads
            ));
        }
        if self.attention == AttentionKind::CausalRope && !self.head_dim().is_multiple_of(2) {
            return Err("rotary embeddings need an even head dimension".to_owned());
        }
        Ok(())
    }

    /// Width of the K/V projections: `n_kv_heads * P` (equals `E` for
    /// classic multi-head attention).
    #[must_use]
    pub fn kv_width(&self) -> usize {
        self.n_kv_heads * self.head_dim()
    }

    /// Query heads sharing one K/V head (`1` for classic MHA).
    #[must_use]
    pub fn gqa_group_size(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// The same configuration with a different sequence length (the paper
    /// uses `S = 128` for autoregressive TinyLlama but `S = 16` in prompt
    /// mode).
    #[must_use]
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// The same configuration with a different layer count (the depth
    /// axis: per-block structure is unchanged, only the stack height —
    /// and therefore the weight-residency thresholds — move).
    #[must_use]
    pub fn with_n_layers(mut self, n_layers: usize) -> Self {
        self.n_layers = n_layers;
        self
    }

    /// Parameters in one Transformer block: `W_Q`/`W_O` at `E x E`,
    /// `W_K`/`W_V` at `E x kv_width`, plus the `2 E F` FFN. For classic
    /// multi-head attention (`kv_width == E`) this is the paper's
    /// `4 E^2 + 2 E F`.
    #[must_use]
    pub fn params_per_block(&self) -> usize {
        2 * self.embed_dim * self.embed_dim
            + 2 * self.embed_dim * self.kv_width()
            + 2 * self.embed_dim * self.ffn_dim
    }

    /// Weight bytes of one block at the deployment dtype.
    #[must_use]
    pub fn block_weight_bytes(&self) -> u64 {
        (self.params_per_block() * self.dtype.size_bytes()) as u64
    }

    /// Weight bytes of all blocks.
    #[must_use]
    pub fn total_weight_bytes(&self) -> u64 {
        self.block_weight_bytes() * self.n_layers as u64
    }

    /// KV-cache bytes per block at context length `s` (keys + values, at
    /// the K/V width — grouped-query attention shrinks this).
    #[must_use]
    pub fn kv_cache_bytes_per_block(&self, s: usize) -> u64 {
        (2 * s * self.kv_width() * self.dtype.size_bytes()) as u64
    }

    /// The sequence length a linear kernel processes in the given mode
    /// (1 for autoregressive steps, `seq_len` for prompt/encoder passes).
    #[must_use]
    pub fn tokens_per_pass(&self, mode: InferenceMode) -> usize {
        match mode {
            InferenceMode::Autoregressive => 1,
            InferenceMode::Prompt => self.seq_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_llama_matches_paper_dimensions() {
        let c = TransformerConfig::tiny_llama_42m();
        assert_eq!(c.embed_dim, 512);
        assert_eq!(c.ffn_dim, 2048);
        assert_eq!(c.n_layers, 8);
        assert_eq!(c.n_heads, 8);
        assert_eq!(c.head_dim(), 64);
        assert_eq!(c.seq_len, 128);
        c.validate().unwrap();
    }

    #[test]
    fn tiny_llama_block_is_3_15_mib_int8() {
        let c = TransformerConfig::tiny_llama_42m();
        // 4*512*512 + 2*512*2048 = 3_145_728 params = 3 MiB at int8.
        assert_eq!(c.block_weight_bytes(), 3_145_728);
        // Too big for a single chip's 2 MiB L2: the single-chip system must
        // stream from L3 (this is the crux of the paper).
        assert!(c.block_weight_bytes() > 2 * 1024 * 1024);
    }

    #[test]
    fn scaled_model_keeps_other_params() {
        let c = TransformerConfig::tiny_llama_scaled_64h();
        assert_eq!(c.n_heads, 64);
        assert_eq!(c.head_dim(), 8);
        assert_eq!(c.params_per_block(), TransformerConfig::tiny_llama_42m().params_per_block());
        c.validate().unwrap();
    }

    #[test]
    fn mobile_bert_matches_paper() {
        let c = TransformerConfig::mobile_bert();
        assert_eq!(c.embed_dim, 512);
        assert_eq!(c.ffn_dim, 512);
        assert_eq!(c.n_heads, 4);
        assert_eq!(c.seq_len, 268);
        assert_eq!(c.params_per_block(), 6 * 512 * 512);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = TransformerConfig::tiny_llama_42m();
        c.n_heads = 3;
        assert!(c.validate().is_err());
        c.n_heads = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn kv_cache_bytes() {
        let c = TransformerConfig::tiny_llama_42m();
        // 2 * 128 * 512 int8 bytes.
        assert_eq!(c.kv_cache_bytes_per_block(128), 131_072);
    }

    #[test]
    fn deep_variants_scale_depth_only() {
        let base = TransformerConfig::tiny_llama_42m();
        let deep = TransformerConfig::tiny_llama_deep(96);
        assert_eq!(deep.n_layers, 96);
        assert_eq!(deep.name, "TinyLlama-42M-d96");
        assert_eq!(deep.params_per_block(), base.params_per_block());
        assert_eq!(deep.total_weight_bytes(), 12 * base.total_weight_bytes());
        deep.validate().unwrap();
        let mb = TransformerConfig::mobile_bert_deep(48);
        assert_eq!(mb.n_layers, 48);
        assert_eq!(mb.name, "MobileBERT-d48");
        assert_eq!(TransformerConfig::mobile_bert().with_n_layers(48).n_layers, 48);
    }

    #[test]
    fn tokens_per_pass() {
        let c = TransformerConfig::tiny_llama_42m();
        assert_eq!(c.tokens_per_pass(InferenceMode::Autoregressive), 1);
        assert_eq!(c.tokens_per_pass(InferenceMode::Prompt), 128);
    }
}
