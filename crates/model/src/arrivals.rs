//! Open-loop arrival processes: deterministic, seeded request-arrival
//! generators for the serving frontend.
//!
//! A closed-loop benchmark (PR 5's saturated batch) answers "how fast is
//! a full batch?"; a *serving* study needs open-loop arrivals — requests
//! show up on their own clock whether or not the fleet is ready — so that
//! queueing delay, time-to-first-token, and goodput-vs-offered-load
//! curves become measurable. This module is the workload side of that
//! story: an [`ArrivalProcess`] maps `(n, seed)` to a reproducible
//! non-decreasing vector of arrival cycles, and a [`ServeWorkload`]
//! bundles those arrivals with per-request prompt/decode shapes for the
//! timing layer in `mtp-core`.
//!
//! Everything is deterministic by construction: the only randomness is a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream owned by
//! this module, so the same `(process, n, seed)` triple replays the same
//! workload bit-for-bit on every platform — the property the serving
//! lockstep suite (`tests/serving_lockstep.rs`) locks with byte-equality
//! over CSV/JSON sweep output.
//!
//! Rates are expressed **per megacycle** of simulated time: at the
//! paper's 360 MHz clock, 1 request per megacycle is 360 requests/s.
//!
//! # Examples
//!
//! ```
//! use mtp_model::arrivals::ArrivalProcess;
//!
//! let p = ArrivalProcess::parse("poisson:2.5")?;
//! let a = p.sample(100, 42);
//! let b = p.sample(100, 42);
//! assert_eq!(a, b); // seeded and replayable
//! assert!(a.windows(2).all(|w| w[0] <= w[1]));
//! assert_eq!(p.label(), "poisson2.5");
//! # Ok::<(), String>(())
//! ```

use crate::TransformerConfig;

/// SplitMix64: the tiny, seedable, platform-independent generator behind
/// every arrival draw. Chosen over a vendored RNG dependency because the
/// exact stream is part of the replayability contract — two builds must
/// produce byte-identical workloads from the same seed.
#[derive(Debug, Clone)]
struct ArrivalRng {
    state: u64,
}

impl ArrivalRng {
    fn new(seed: u64) -> Self {
        ArrivalRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 random bits (the full f64
    /// mantissa), so `1 - u` is never zero and `-ln(1 - u)` is finite.
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How requests arrive at the fleet, as a function from `(n, seed)` to
/// `n` non-decreasing arrival cycles.
///
/// Three shapes cover the serving studies the roadmap asks for:
/// memoryless load ([`ArrivalProcess::Poisson`]), correlated load
/// ([`ArrivalProcess::Bursty`] — Poisson epochs that each deliver a whole
/// burst at once), and exact replay ([`ArrivalProcess::Trace`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: i.i.d. exponential inter-arrival gaps with
    /// mean `1e6 / rate_per_mcycle` cycles.
    Poisson {
        /// Offered load in requests per megacycle of simulated time.
        rate_per_mcycle: f64,
    },
    /// Bursty arrivals: burst *epochs* form a Poisson process of rate
    /// `rate_per_mcycle / burst`, and every epoch delivers `burst`
    /// requests at the same cycle — same average offered load as
    /// [`ArrivalProcess::Poisson`] at equal `rate_per_mcycle`, maximally
    /// clumped.
    Bursty {
        /// Average offered load in requests per megacycle (across
        /// bursts).
        rate_per_mcycle: f64,
        /// Requests per burst epoch (at least 1; 1 degenerates to
        /// Poisson).
        burst: usize,
    },
    /// Exact replay of recorded arrival cycles. When more requests are
    /// drawn than the trace holds, the final cycle repeats (the tail of
    /// the workload arrives "all at once" at the last recorded instant).
    Trace {
        /// Non-decreasing arrival cycles (sorted on construction).
        arrivals: Vec<u64>,
    },
}

impl ArrivalProcess {
    /// Parses a CLI spelling: `poisson:RATE`, `bursty:RATE:BURST`, or
    /// `trace:C1,C2,...` (rates are per megacycle and must be finite and
    /// positive; trace cycles are sorted).
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let bad_rate = |r: &str| {
            format!("bad arrival rate `{r}` (need a finite rate > 0 in requests per megacycle)")
        };
        let parse_rate = |r: &str| -> Result<f64, String> {
            match r.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
                _ => Err(bad_rate(r)),
            }
        };
        if let Some(rate) = s.strip_prefix("poisson:") {
            return Ok(ArrivalProcess::Poisson { rate_per_mcycle: parse_rate(rate)? });
        }
        if let Some(rest) = s.strip_prefix("bursty:") {
            let (rate, burst) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad bursty spec `{rest}` (expected bursty:RATE:BURST)"))?;
            let burst: usize = burst
                .parse()
                .ok()
                .filter(|&b| b > 0)
                .ok_or_else(|| format!("bad burst size `{burst}` (need a positive integer)"))?;
            return Ok(ArrivalProcess::Bursty { rate_per_mcycle: parse_rate(rate)?, burst });
        }
        if let Some(list) = s.strip_prefix("trace:") {
            let mut arrivals = Vec::new();
            for c in list.split(',') {
                arrivals.push(
                    c.parse::<u64>().map_err(|_| {
                        format!("bad trace cycle `{c}` (need a non-negative integer)")
                    })?,
                );
            }
            if arrivals.is_empty() {
                return Err("an arrival trace needs at least one cycle".to_owned());
            }
            arrivals.sort_unstable();
            return Ok(ArrivalProcess::Trace { arrivals });
        }
        Err(format!(
            "unknown arrival process `{s}` (expected poisson:RATE, bursty:RATE:BURST, or \
             trace:C1,C2,...)"
        ))
    }

    /// Compact label for CSV/JSON rows and cache keys: `poisson2.5`,
    /// `bursty2.5x8`, `trace12` (trace length).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson { rate_per_mcycle } => format!("poisson{rate_per_mcycle}"),
            ArrivalProcess::Bursty { rate_per_mcycle, burst } => {
                format!("bursty{rate_per_mcycle}x{burst}")
            }
            ArrivalProcess::Trace { arrivals } => format!("trace{}", arrivals.len()),
        }
    }

    /// Average offered load in requests per megacycle (`None` for a
    /// trace, whose rate is whatever was recorded).
    #[must_use]
    pub fn rate_per_mcycle(&self) -> Option<f64> {
        match *self {
            ArrivalProcess::Poisson { rate_per_mcycle }
            | ArrivalProcess::Bursty { rate_per_mcycle, .. } => Some(rate_per_mcycle),
            ArrivalProcess::Trace { .. } => None,
        }
    }

    /// Draws `n` arrival cycles, non-decreasing, deterministically from
    /// `seed`. The stochastic processes round each exponential gap to
    /// whole cycles; rounding is monotone, so scaling the rate up under
    /// the same seed can only move every arrival earlier (the property
    /// the load-monotonicity test leans on).
    #[must_use]
    pub fn sample(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate_per_mcycle } => {
                let mut rng = ArrivalRng::new(seed);
                let mut t = 0u64;
                for _ in 0..n {
                    t += exponential_gap(&mut rng, rate_per_mcycle);
                    out.push(t);
                }
            }
            ArrivalProcess::Bursty { rate_per_mcycle, burst } => {
                let mut rng = ArrivalRng::new(seed);
                let epoch_rate = rate_per_mcycle / burst as f64;
                let mut t = 0u64;
                while out.len() < n {
                    t += exponential_gap(&mut rng, epoch_rate);
                    for _ in 0..burst.min(n - out.len()) {
                        out.push(t);
                    }
                }
            }
            ArrivalProcess::Trace { ref arrivals } => {
                let last = *arrivals.last().expect("trace is non-empty by construction");
                for i in 0..n {
                    out.push(arrivals.get(i).copied().unwrap_or(last));
                }
            }
        }
        out
    }
}

/// One exponential inter-arrival gap in whole cycles at `rate` requests
/// per megacycle.
fn exponential_gap(rng: &mut ArrivalRng, rate: f64) -> u64 {
    let u = rng.next_unit();
    let gap = -(1.0 - u).ln() * 1.0e6 / rate;
    // Arrivals beyond ~2^63 cycles are off any simulated horizon; the
    // saturating cast keeps pathological rates well-defined.
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap.round() as u64
    }
}

/// One open-loop request: shape plus the cycle it arrives at the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServeRequest {
    /// Prompt length in tokens (at least 1).
    pub prompt_len: usize,
    /// Tokens to decode after the prompt.
    pub decode_len: usize,
    /// Cycle at which the request arrives (the latency clock starts
    /// here).
    pub arrival_cycles: u64,
}

impl ServeRequest {
    /// KV-cache positions the request occupies once finished.
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.prompt_len + self.decode_len
    }
}

/// An open-loop serving workload: requests in arrival order, each with
/// its shape and arrival cycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ServeWorkload {
    requests: Vec<ServeRequest>,
}

impl ServeWorkload {
    /// A workload from explicit requests (sorted by arrival cycle,
    /// stably, so same-cycle requests keep their given order).
    ///
    /// # Errors
    ///
    /// Returns a description when the workload is empty or any request
    /// has an empty prompt.
    pub fn new(mut requests: Vec<ServeRequest>) -> Result<Self, String> {
        if requests.is_empty() {
            return Err("a serving workload needs at least one request".to_owned());
        }
        for (i, r) in requests.iter().enumerate() {
            if r.prompt_len == 0 {
                return Err(format!("request {i} has an empty prompt"));
            }
        }
        requests.sort_by_key(|r| r.arrival_cycles);
        Ok(ServeWorkload { requests })
    }

    /// The standard open-loop workload: `n` identical requests of shape
    /// `(prompt_len, decode_len)` arriving per `process.sample(n, seed)`.
    ///
    /// # Errors
    ///
    /// Returns a description when `n` or `prompt_len` is zero.
    pub fn open_loop(
        process: &ArrivalProcess,
        n: usize,
        prompt_len: usize,
        decode_len: usize,
        seed: u64,
    ) -> Result<Self, String> {
        if n == 0 {
            return Err("a serving workload needs at least one request".to_owned());
        }
        if prompt_len == 0 {
            return Err("requests need a non-empty prompt".to_owned());
        }
        let requests = process
            .sample(n, seed)
            .into_iter()
            .map(|arrival_cycles| ServeRequest { prompt_len, decode_len, arrival_cycles })
            .collect();
        Self::new(requests)
    }

    /// The requests in arrival order.
    #[must_use]
    pub fn requests(&self) -> &[ServeRequest] {
        &self.requests
    }

    /// Number of requests.
    #[must_use]
    pub fn n_requests(&self) -> usize {
        self.requests.len()
    }

    /// Checks every request fits the model's KV-cache capacity
    /// (`cfg.seq_len` positions per request slot).
    ///
    /// # Errors
    ///
    /// Returns a description naming the first over-long request.
    pub fn validate_for(&self, cfg: &TransformerConfig) -> Result<(), String> {
        for (i, r) in self.requests.iter().enumerate() {
            if r.context_len() > cfg.seq_len {
                return Err(format!(
                    "request {i} needs {} context positions but `{}` caches {}",
                    r.context_len(),
                    cfg.name,
                    cfg.seq_len
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_labels() {
        let p = ArrivalProcess::parse("poisson:2.5").unwrap();
        assert_eq!(p, ArrivalProcess::Poisson { rate_per_mcycle: 2.5 });
        assert_eq!(p.label(), "poisson2.5");
        assert_eq!(p.rate_per_mcycle(), Some(2.5));
        let b = ArrivalProcess::parse("bursty:4:8").unwrap();
        assert_eq!(b, ArrivalProcess::Bursty { rate_per_mcycle: 4.0, burst: 8 });
        assert_eq!(b.label(), "bursty4x8");
        let t = ArrivalProcess::parse("trace:30,10,20").unwrap();
        assert_eq!(t, ArrivalProcess::Trace { arrivals: vec![10, 20, 30] });
        assert_eq!(t.label(), "trace3");
        assert_eq!(t.rate_per_mcycle(), None);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "gauss:3",
            "poisson:0",
            "poisson:-1",
            "poisson:inf",
            "poisson:abc",
            "bursty:2",
            "bursty:2:0",
            "bursty:0:4",
            "trace:",
            "trace:1,x",
        ] {
            let err = ArrivalProcess::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad}");
        }
    }

    #[test]
    fn samples_are_seeded_sorted_and_seed_sensitive() {
        let p = ArrivalProcess::parse("poisson:1.5").unwrap();
        let a = p.sample(200, 7);
        assert_eq!(a, p.sample(200, 7));
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_ne!(a, p.sample(200, 8));
    }

    #[test]
    fn higher_rate_same_seed_arrives_no_later() {
        let lo = ArrivalProcess::Poisson { rate_per_mcycle: 1.0 }.sample(100, 3);
        let hi = ArrivalProcess::Poisson { rate_per_mcycle: 4.0 }.sample(100, 3);
        assert!(lo.iter().zip(&hi).all(|(l, h)| h <= l));
    }

    #[test]
    fn bursty_clumps_at_equal_average_rate() {
        let b = ArrivalProcess::Bursty { rate_per_mcycle: 2.0, burst: 4 }.sample(16, 5);
        // Every burst epoch delivers 4 identical cycles.
        for chunk in b.chunks(4) {
            assert!(chunk.iter().all(|&c| c == chunk[0]), "{chunk:?}");
        }
        // Partial final burst when n is not a multiple of the burst size.
        let odd = ArrivalProcess::Bursty { rate_per_mcycle: 2.0, burst: 4 }.sample(6, 5);
        assert_eq!(odd.len(), 6);
        assert_eq!(odd[..4], b[..4]);
    }

    #[test]
    fn trace_replays_and_clamps() {
        let t = ArrivalProcess::Trace { arrivals: vec![5, 10, 20] };
        assert_eq!(t.sample(2, 0), vec![5, 10]);
        assert_eq!(t.sample(5, 99), vec![5, 10, 20, 20, 20]);
    }

    #[test]
    fn workload_construction_and_validation() {
        let p = ArrivalProcess::parse("poisson:2").unwrap();
        let w = ServeWorkload::open_loop(&p, 10, 4, 3, 42).unwrap();
        assert_eq!(w.n_requests(), 10);
        assert!(w.requests().windows(2).all(|r| r[0].arrival_cycles <= r[1].arrival_cycles));
        assert!(ServeWorkload::open_loop(&p, 0, 4, 3, 42).is_err());
        assert!(ServeWorkload::open_loop(&p, 4, 0, 3, 42).is_err());
        assert!(ServeWorkload::new(vec![]).is_err());

        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.seq_len = 16;
        assert!(w.validate_for(&cfg).is_ok());
        let long = ServeWorkload::open_loop(&p, 2, 10, 10, 1).unwrap();
        let err = long.validate_for(&cfg).unwrap_err();
        assert!(err.contains("20 context positions"), "{err}");
    }
}
