//! Whole-model golden inference drivers: decoder (autoregressive + prompt)
//! and encoder.

use crate::{reference, KvCache, ModelWeights, TransformerConfig};
use mtp_tensor::{Result, Tensor};

/// Golden decoder-only model (TinyLlama-style) running on "one big chip":
/// the reference the distributed system is compared against.
#[derive(Debug, Clone)]
pub struct Decoder {
    cfg: TransformerConfig,
    weights: ModelWeights,
    caches: Vec<KvCache>,
}

impl Decoder {
    /// A decoder with the given config and weights; KV-caches sized to
    /// `cfg.seq_len`.
    #[must_use]
    pub fn new(cfg: TransformerConfig, weights: ModelWeights) -> Self {
        let caches = (0..cfg.n_layers).map(|_| KvCache::new(cfg.kv_width(), cfg.seq_len)).collect();
        Decoder { cfg, weights, caches }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Number of positions currently cached.
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.caches.first().map_or(0, KvCache::len)
    }

    /// Autoregressive step: one `[1 x E]` embedding row in, one out,
    /// updating every layer's KV-cache.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape mismatches (e.g. a wrong-width input row).
    pub fn step(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for (layer, cache) in self.caches.iter_mut().enumerate() {
            h = reference::block_forward(&h, self.weights.block(layer), &self.cfg, Some(cache))?;
        }
        Ok(h)
    }

    /// Prompt-mode pass: all `S` rows at once with causal masking, without
    /// touching the caches.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape mismatches.
    pub fn prompt(&self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in 0..self.cfg.n_layers {
            h = reference::block_forward(&h, self.weights.block(layer), &self.cfg, None)?;
        }
        Ok(h)
    }

    /// Resets all KV-caches.
    pub fn reset(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
    }
}

/// Golden encoder-only model (MobileBERT-style).
#[derive(Debug, Clone)]
pub struct Encoder {
    cfg: TransformerConfig,
    weights: ModelWeights,
}

impl Encoder {
    /// An encoder with the given config and weights.
    #[must_use]
    pub fn new(cfg: TransformerConfig, weights: ModelWeights) -> Self {
        Encoder { cfg, weights }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Full bidirectional pass over an `[S x E]` input.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape mismatches.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in 0..self.cfg.n_layers {
            h = reference::block_forward(&h, self.weights.block(layer), &self.cfg, None)?;
        }
        Ok(h)
    }
}

/// Builds a `[rows x E]` synthetic embedding matrix for a config (token
/// embeddings stand-in used across tests, examples and benches).
#[must_use]
pub fn synthetic_embeddings(cfg: &TransformerConfig, rows: usize, seed: u64) -> Tensor {
    reference::synthetic_input(rows, cfg.embed_dim, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::synthetic_input;
    use mtp_tensor::Shape;

    fn small_cfg() -> TransformerConfig {
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.embed_dim = 32;
        cfg.ffn_dim = 48;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 4;
        cfg.n_layers = 3;
        cfg.seq_len = 8;
        cfg
    }

    #[test]
    fn decoder_steps_fill_cache() {
        let cfg = small_cfg();
        let w = ModelWeights::seeded(&cfg, 1);
        let mut d = Decoder::new(cfg.clone(), w);
        assert_eq!(d.cached_len(), 0);
        for i in 0..4 {
            let x = synthetic_input(1, cfg.embed_dim, i);
            let out = d.step(&x).unwrap();
            assert_eq!(out.shape(), Shape::mat(1, cfg.embed_dim));
        }
        assert_eq!(d.cached_len(), 4);
        d.reset();
        assert_eq!(d.cached_len(), 0);
    }

    #[test]
    fn stepwise_equals_prompt_pass() {
        // Multi-layer version of the cached-vs-causal equivalence.
        let cfg = small_cfg();
        let w = ModelWeights::seeded(&cfg, 5);
        let mut d = Decoder::new(cfg.clone(), w);
        let x = synthetic_input(5, cfg.embed_dim, 7);
        let prompt = d.prompt(&x).unwrap();
        for r in 0..5 {
            let row = Tensor::from_vec(Shape::mat(1, cfg.embed_dim), x.row(r).to_vec()).unwrap();
            let out = d.step(&row).unwrap();
            let want =
                Tensor::from_vec(Shape::mat(1, cfg.embed_dim), prompt.row(r).to_vec()).unwrap();
            assert!(
                out.approx_eq(&want, 1e-3).unwrap(),
                "row {r}: diff {}",
                out.max_abs_diff(&want).unwrap()
            );
        }
    }

    #[test]
    fn encoder_forward_shape() {
        let mut cfg = small_cfg();
        cfg.attention = crate::AttentionKind::Bidirectional;
        cfg.norm = crate::NormKind::LayerNorm;
        let w = ModelWeights::seeded(&cfg, 2);
        let e = Encoder::new(cfg.clone(), w);
        let x = synthetic_input(6, cfg.embed_dim, 3);
        let out = e.forward(&x).unwrap();
        assert_eq!(out.shape(), x.shape());
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn synthetic_embeddings_width_matches_config() {
        let cfg = small_cfg();
        let x = synthetic_embeddings(&cfg, 3, 1);
        assert_eq!(x.shape(), Shape::mat(3, 32));
    }
}
