//! End-to-end token generation: embedding table, LM head, greedy decoding.
//!
//! The paper evaluates per-block latency/energy; a downstream user runs
//! *tokens*. This module adds the missing ends of the pipeline — a token
//! embedding table and a (weight-tied) LM head — so whole-sequence
//! generation can be driven through either the golden [`crate::Decoder`]
//! or the distributed executor, and the two can be compared token by
//! token.

use crate::TransformerConfig;
use mtp_tensor::{Result, Shape, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A token id.
pub type TokenId = u32;

/// Token embedding table (`vocab x E`), also used weight-tied as the LM
/// head (`logits = h @ table^T`), as TinyLlama-class models do.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    table: Tensor,
}

impl Embedding {
    /// A seeded random embedding table for `vocab` tokens of `cfg`'s
    /// embedding width.
    #[must_use]
    pub fn seeded(cfg: &TransformerConfig, vocab: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> =
            (0..vocab * cfg.embed_dim).map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * 0.1).collect();
        let table = Tensor::from_vec(Shape::mat(vocab, cfg.embed_dim), data)
            .expect("consistent length by construction");
        Embedding { table }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.table.shape().rows()
    }

    /// Embedding width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.table.shape().cols()
    }

    /// Looks up one token's embedding as a `[1 x E]` row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for out-of-vocabulary ids.
    pub fn embed(&self, token: TokenId) -> Result<Tensor> {
        let mut out = Tensor::default();
        self.embed_into(token, &mut out)?;
        Ok(out)
    }

    /// [`Embedding::embed`] into a reusable row buffer (no allocation in
    /// steady state — the per-token generation loop's lookup path).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for out-of-vocabulary ids.
    pub fn embed_into(&self, token: TokenId, out: &mut Tensor) -> Result<()> {
        let row = token as usize;
        if row >= self.vocab() {
            return Err(TensorError::AxisOutOfRange { axis: row, rank: self.vocab() });
        }
        out.assign_from_slice(Shape::mat(1, self.width()), self.table.row(row))
    }

    /// Embeds a token sequence as an `[S x E]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for out-of-vocabulary ids.
    pub fn embed_sequence(&self, tokens: &[TokenId]) -> Result<Tensor> {
        let mut data = Vec::with_capacity(tokens.len() * self.width());
        for &t in tokens {
            if t as usize >= self.vocab() {
                return Err(TensorError::AxisOutOfRange { axis: t as usize, rank: self.vocab() });
            }
            data.extend_from_slice(self.table.row(t as usize));
        }
        Tensor::from_vec(Shape::mat(tokens.len(), self.width()), data)
    }

    /// Weight-tied LM head: logits for one hidden row (`[1 x E]`).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn logits(&self, hidden: &Tensor) -> Result<Tensor> {
        hidden.try_matmul_t(&self.table)
    }

    /// [`Embedding::logits`] into a reusable buffer (no allocation in
    /// steady state).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn logits_into(&self, hidden: &Tensor, out: &mut Tensor) -> Result<()> {
        hidden.matmul_t_into(&self.table, out)
    }

    /// Greedy (argmax) next token for one hidden row.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn greedy_next(&self, hidden: &Tensor) -> Result<TokenId> {
        let logits = self.logits(hidden)?;
        Ok(argmax_row(&logits))
    }
}

/// Row-0 argmax of a logits tensor (first maximal index wins). Shared
/// with the batched driver (`crate::batch`) so the greedy tie-break can
/// never diverge between the solo and batched paths.
pub(crate) fn argmax_row(logits: &Tensor) -> TokenId {
    let row = logits.row(0);
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best as TokenId
}

/// Greedy generation driver over any step function (`[1 x E]` in,
/// `[1 x E]` out): feeds `prompt` token by token, then generates
/// `n_tokens` more.
///
/// Works identically over the golden [`crate::Decoder::step`] and the
/// distributed executor's step — which is exactly how the end-to-end
/// equivalence test compares them. The embedding row and logits buffers
/// are reused across tokens, so the driver itself allocates nothing per
/// token in steady state (the model's `step` owns its output).
///
/// # Errors
///
/// Propagates embedding and model errors.
pub fn generate_greedy<E>(
    embedding: &Embedding,
    prompt: &[TokenId],
    n_tokens: usize,
    mut step: impl FnMut(&Tensor) -> std::result::Result<Tensor, E>,
) -> std::result::Result<Vec<TokenId>, GenerateError<E>> {
    let mut out = Vec::with_capacity(n_tokens);
    let mut x = Tensor::default();
    let mut logits = Tensor::default();
    let mut hidden = None;
    for &t in prompt {
        embedding.embed_into(t, &mut x).map_err(GenerateError::Embedding)?;
        hidden = Some(step(&x).map_err(GenerateError::Model)?);
    }
    let mut hidden = hidden.ok_or(GenerateError::EmptyPrompt)?;
    for _ in 0..n_tokens {
        embedding.logits_into(&hidden, &mut logits).map_err(GenerateError::Embedding)?;
        let next = argmax_row(&logits);
        out.push(next);
        embedding.embed_into(next, &mut x).map_err(GenerateError::Embedding)?;
        hidden = step(&x).map_err(GenerateError::Model)?;
    }
    Ok(out)
}

/// Errors of [`generate_greedy`].
#[derive(Debug)]
pub enum GenerateError<E> {
    /// The prompt was empty (nothing to condition on).
    EmptyPrompt,
    /// An embedding lookup failed.
    Embedding(TensorError),
    /// The underlying model step failed.
    Model(E),
}

impl<E: std::fmt::Debug> std::fmt::Display for GenerateError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::EmptyPrompt => write!(f, "prompt must contain at least one token"),
            GenerateError::Embedding(e) => write!(f, "embedding lookup failed: {e}"),
            GenerateError::Model(e) => write!(f, "model step failed: {e:?}"),
        }
    }
}

impl<E: std::fmt::Debug> std::error::Error for GenerateError<E> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decoder, ModelWeights};

    fn small_cfg() -> TransformerConfig {
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.embed_dim = 32;
        cfg.ffn_dim = 48;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 4;
        cfg.n_layers = 2;
        cfg.seq_len = 24;
        cfg
    }

    #[test]
    fn embedding_lookup_and_bounds() {
        let cfg = small_cfg();
        let e = Embedding::seeded(&cfg, 16, 1);
        assert_eq!(e.vocab(), 16);
        let row = e.embed(3).unwrap();
        assert_eq!(row.shape(), Shape::mat(1, 32));
        assert!(e.embed(16).is_err());
        assert!(e.embed_sequence(&[1, 2, 99]).is_err());
    }

    #[test]
    fn embed_sequence_stacks_rows() {
        let cfg = small_cfg();
        let e = Embedding::seeded(&cfg, 8, 2);
        let seq = e.embed_sequence(&[5, 1]).unwrap();
        assert_eq!(seq.row(0), e.embed(5).unwrap().row(0));
        assert_eq!(seq.row(1), e.embed(1).unwrap().row(0));
    }

    #[test]
    fn greedy_next_is_argmax() {
        let cfg = small_cfg();
        let e = Embedding::seeded(&cfg, 8, 3);
        // A hidden state equal to token 6's embedding has maximal dot
        // product with itself among near-orthogonal random rows.
        let h = e.embed(6).unwrap();
        assert_eq!(e.greedy_next(&h).unwrap(), 6);
    }

    #[test]
    fn generation_is_deterministic_and_in_vocab() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 4);
        let emb = Embedding::seeded(&cfg, 32, 5);
        let mut d1 = Decoder::new(cfg.clone(), weights.clone());
        let out1 = generate_greedy(&emb, &[1, 2, 3], 8, |x| d1.step(x)).unwrap();
        let mut d2 = Decoder::new(cfg, weights);
        let out2 = generate_greedy(&emb, &[1, 2, 3], 8, |x| d2.step(x)).unwrap();
        assert_eq!(out1, out2);
        assert_eq!(out1.len(), 8);
        assert!(out1.iter().all(|&t| (t as usize) < 32));
    }

    #[test]
    fn empty_prompt_rejected() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 4);
        let emb = Embedding::seeded(&cfg, 32, 5);
        let mut d = Decoder::new(cfg, weights);
        let r = generate_greedy(&emb, &[], 4, |x| d.step(x));
        assert!(matches!(r, Err(GenerateError::EmptyPrompt)));
    }
}
