//! Multi-request batching workloads: N interleaved requests with
//! independent KV-cache states.
//!
//! A production deployment serves many concurrent requests, not one.
//! This module is the model-level substrate for that workload dimension:
//! a [`BatchWorkload`] describes the *shape* of a batch (per-request
//! prompt/decode lengths and arrival offsets), a [`BatchDecoder`] runs N
//! requests through one shared weight set with strictly per-request
//! [`KvCache`] state, and [`generate_greedy_batch`] drives round-robin
//! interleaved greedy generation over any per-request step function.
//!
//! The central invariant — locked by the KV-isolation property suite in
//! `tests/batch_lockstep.rs` — is that batching is *time multiplexing,
//! not state sharing*: every request's outputs are bit-identical to
//! running that request alone, for any batch composition and any
//! interleaving the round-robin driver produces. Batch size 1 is
//! therefore exactly the existing single-request path.
//!
//! The timing-level counterpart (interleaved per-request block schedules,
//! request-level periodicity) lives in `mtp-core` and `mtp-sim`; see
//! `DESIGN.md` §10.
//!
//! # Examples
//!
//! ```
//! use mtp_model::{BatchWorkload, RequestSpec};
//!
//! let batch = BatchWorkload::uniform(4, 16, 8);
//! assert_eq!(batch.n_requests(), 4);
//! assert!(batch.is_uniform_for(mtp_model::InferenceMode::Prompt));
//! let mixed = BatchWorkload::new(vec![
//!     RequestSpec { prompt_len: 16, decode_len: 8, arrival: 0 },
//!     RequestSpec { prompt_len: 64, decode_len: 4, arrival: 2 },
//! ])?;
//! assert!(!mixed.is_uniform_for(mtp_model::InferenceMode::Prompt));
//! assert!(mixed.is_uniform_for(mtp_model::InferenceMode::Autoregressive));
//! # Ok::<(), String>(())
//! ```

use crate::generate::{argmax_row, Embedding, TokenId};
use crate::{reference, InferenceMode, KvCache, ModelWeights, TransformerConfig};
use mtp_tensor::{Result, Tensor, TensorError};

/// The shape of one request in a batch: how many prompt tokens it
/// conditions on, how many tokens it decodes, and when it joins the
/// batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestSpec {
    /// Prompt length in tokens (at least 1: a request needs something to
    /// condition on).
    pub prompt_len: usize,
    /// Number of tokens to decode after the prompt.
    pub decode_len: usize,
    /// Round offset at which the request joins the batch (0 = present
    /// from the start). Arrival shapes the functional interleaving (and
    /// therefore each request's KV-cache fill trajectory); the timing
    /// model simulates the saturated steady state where every request is
    /// active, so arrival does not enter the schedule (DESIGN.md §10).
    pub arrival: usize,
}

impl RequestSpec {
    /// Total KV-cache positions this request occupies once finished
    /// (every prompt and decoded token is appended).
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.prompt_len + self.decode_len
    }

    /// Tokens one Transformer-block pass processes for this request in
    /// the given mode: 1 per autoregressive decode step, the whole
    /// prompt in prompt mode.
    #[must_use]
    pub fn tokens_per_pass(&self, mode: InferenceMode) -> usize {
        match mode {
            InferenceMode::Autoregressive => 1,
            InferenceMode::Prompt => self.prompt_len,
        }
    }
}

/// A batch of N requests served concurrently, each with its own
/// KV-cache state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchWorkload {
    requests: Vec<RequestSpec>,
}

impl BatchWorkload {
    /// A batch from explicit per-request specifications.
    ///
    /// # Errors
    ///
    /// Returns a description when the batch is empty or any request has
    /// a zero-length prompt.
    pub fn new(requests: Vec<RequestSpec>) -> std::result::Result<Self, String> {
        if requests.is_empty() {
            return Err("a batch needs at least one request".to_owned());
        }
        for (i, r) in requests.iter().enumerate() {
            if r.prompt_len == 0 {
                return Err(format!("request {i} has an empty prompt"));
            }
        }
        Ok(BatchWorkload { requests })
    }

    /// A uniform batch: `n` identical requests of `prompt_len` prompt
    /// tokens and `decode_len` decoded tokens, all present from round 0.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `prompt_len` is zero.
    #[must_use]
    pub fn uniform(n: usize, prompt_len: usize, decode_len: usize) -> Self {
        assert!(n > 0, "a batch needs at least one request");
        assert!(prompt_len > 0, "requests need a non-empty prompt");
        BatchWorkload { requests: vec![RequestSpec { prompt_len, decode_len, arrival: 0 }; n] }
    }

    /// Number of requests in the batch.
    #[must_use]
    pub fn n_requests(&self) -> usize {
        self.requests.len()
    }

    /// The per-request specifications.
    #[must_use]
    pub fn requests(&self) -> &[RequestSpec] {
        &self.requests
    }

    /// `true` when every request presents the same per-block token count
    /// in the given mode — the condition under which one request-slot
    /// schedule template serves the whole batch. Autoregressive batches
    /// are always uniform (every decode step processes one token);
    /// prompt-mode batches are uniform when all prompt lengths agree.
    /// Arrival offsets never affect uniformity (they are invisible to
    /// the steady-state schedule).
    #[must_use]
    pub fn is_uniform_for(&self, mode: InferenceMode) -> bool {
        let first = self.requests[0].tokens_per_pass(mode);
        self.requests.iter().all(|r| r.tokens_per_pass(mode) == first)
    }

    /// Per-request per-block token counts in request order (the shape
    /// vector heterogeneous batches are keyed by).
    #[must_use]
    pub fn tokens_per_pass(&self, mode: InferenceMode) -> Vec<usize> {
        self.requests.iter().map(|r| r.tokens_per_pass(mode)).collect()
    }

    /// The longest per-request context any request reaches.
    #[must_use]
    pub fn max_context(&self) -> usize {
        self.requests.iter().map(RequestSpec::context_len).max().unwrap_or(0)
    }

    /// Checks the batch fits the model's KV-cache capacity
    /// (`cfg.seq_len` positions per request).
    ///
    /// # Errors
    ///
    /// Returns a description naming the first over-long request.
    pub fn validate_for(&self, cfg: &TransformerConfig) -> std::result::Result<(), String> {
        for (i, r) in self.requests.iter().enumerate() {
            if r.context_len() > cfg.seq_len {
                return Err(format!(
                    "request {i} needs {} context positions but `{}` caches {}",
                    r.context_len(),
                    cfg.name,
                    cfg.seq_len
                ));
            }
        }
        Ok(())
    }
}

/// A batched golden decoder: N requests time-multiplexed over one shared
/// weight set, each with its own per-layer [`KvCache`] stack.
///
/// Stepping request `r` touches only request `r`'s caches, so each
/// request's trajectory is bit-identical to a standalone
/// [`crate::Decoder`] fed the same tokens — the functional form of the
/// batching subsystem's isolation guarantee.
///
/// ```
/// use mtp_model::{BatchDecoder, Decoder, ModelWeights, TransformerConfig};
/// use mtp_model::synthetic_embeddings;
///
/// let mut cfg = TransformerConfig::tiny_llama_42m();
/// cfg.embed_dim = 32;
/// cfg.ffn_dim = 48;
/// cfg.n_heads = 4;
/// cfg.n_kv_heads = 4;
/// cfg.n_layers = 2;
/// cfg.seq_len = 8;
/// let weights = ModelWeights::seeded(&cfg, 1);
/// let mut batch = BatchDecoder::new(cfg.clone(), weights.clone(), 2);
/// let mut solo = Decoder::new(cfg.clone(), weights);
/// let x = synthetic_embeddings(&cfg, 1, 7);
/// // Interleave a foreign request between two steps of request 0: its
/// // output is unchanged.
/// let a = batch.step(0, &x)?;
/// let _ = batch.step(1, &x)?;
/// let b = batch.step(0, &x)?;
/// solo.step(&x)?;
/// assert_eq!(b, solo.step(&x)?);
/// assert_eq!(a, {
///     let mut fresh = Decoder::new(cfg, batch.weights().clone());
///     fresh.step(&x)?
/// });
/// # Ok::<(), mtp_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchDecoder {
    cfg: TransformerConfig,
    weights: ModelWeights,
    /// `caches[request][layer]`.
    caches: Vec<Vec<KvCache>>,
}

impl BatchDecoder {
    /// A batched decoder for `n_requests` requests; every request's
    /// KV-caches are sized to `cfg.seq_len`.
    ///
    /// # Panics
    ///
    /// Panics when `n_requests` is zero.
    #[must_use]
    pub fn new(cfg: TransformerConfig, weights: ModelWeights, n_requests: usize) -> Self {
        assert!(n_requests > 0, "a batch needs at least one request");
        let caches = (0..n_requests)
            .map(|_| (0..cfg.n_layers).map(|_| KvCache::new(cfg.kv_width(), cfg.seq_len)).collect())
            .collect();
        BatchDecoder { cfg, weights, caches }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// The shared weight set.
    #[must_use]
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Number of requests the decoder multiplexes.
    #[must_use]
    pub fn n_requests(&self) -> usize {
        self.caches.len()
    }

    /// Number of positions currently cached for `request`.
    ///
    /// # Panics
    ///
    /// Panics when `request` is out of range.
    #[must_use]
    pub fn cached_len(&self, request: usize) -> usize {
        self.caches[request].first().map_or(0, KvCache::len)
    }

    /// One autoregressive step for `request`: a `[1 x E]` embedding row
    /// in, one out, updating only that request's KV-caches.
    ///
    /// # Panics
    ///
    /// Panics when `request` is out of range.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape mismatches.
    pub fn step(&mut self, request: usize, x: &Tensor) -> Result<Tensor> {
        assert!(request < self.caches.len(), "request index out of range");
        run_request(&self.cfg, &self.weights, &mut self.caches[request], x)
    }

    /// One synchronized decode round over all request slots: entry `r`
    /// of `xs` is request `r`'s `[1 x E]` embedding row, or `None` when
    /// the slot is idle this round. Returns one output row per active
    /// slot, in slot order.
    ///
    /// With `threads > 1` active slots run concurrently under
    /// [`std::thread::scope`]; because stepping a request touches only
    /// that request's caches (weights are shared read-only), the result
    /// is bit-identical to stepping the slots sequentially (tested).
    ///
    /// # Panics
    ///
    /// Panics when `xs.len()` differs from [`Self::n_requests`].
    ///
    /// # Errors
    ///
    /// Propagates tensor shape mismatches.
    pub fn step_batch(
        &mut self,
        xs: &[Option<Tensor>],
        threads: usize,
    ) -> Result<Vec<Option<Tensor>>> {
        assert_eq!(xs.len(), self.caches.len(), "one optional input row per request slot");
        let (cfg, weights) = (&self.cfg, &self.weights);
        let threads = threads.clamp(1, xs.len());
        if threads == 1 {
            return xs
                .iter()
                .zip(&mut self.caches)
                .map(|(x, caches)| {
                    x.as_ref().map(|x| run_request(cfg, weights, caches, x)).transpose()
                })
                .collect();
        }
        let chunk = xs.len().div_ceil(threads);
        let mut out: Vec<Option<Tensor>> = vec![None; xs.len()];
        std::thread::scope(|sc| -> Result<()> {
            let mut handles = Vec::with_capacity(threads);
            for ((cch, xch), och) in
                self.caches.chunks_mut(chunk).zip(xs.chunks(chunk)).zip(out.chunks_mut(chunk))
            {
                handles.push(sc.spawn(move || -> Result<()> {
                    for ((caches, x), o) in cch.iter_mut().zip(xch).zip(och.iter_mut()) {
                        if let Some(x) = x {
                            *o = Some(run_request(cfg, weights, caches, x)?);
                        }
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("batch worker panicked")?;
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Resets every request's KV-caches.
    pub fn reset(&mut self) {
        for request in &mut self.caches {
            for cache in request {
                cache.clear();
            }
        }
    }
}

/// One request's autoregressive step against the shared weights: the
/// per-slot unit of work [`BatchDecoder::step_batch`] distributes over
/// threads. `caches` is that request's per-layer stack.
fn run_request(
    cfg: &TransformerConfig,
    weights: &ModelWeights,
    caches: &mut [KvCache],
    x: &Tensor,
) -> Result<Tensor> {
    let mut h = x.clone();
    for (layer, cache) in caches.iter_mut().enumerate() {
        h = reference::block_forward(&h, weights.block(layer), cfg, Some(cache))?;
    }
    Ok(h)
}

/// Errors of [`generate_greedy_batch`].
#[derive(Debug)]
pub enum BatchGenerateError<E> {
    /// A prompt's token count does not match its request specification.
    PromptMismatch {
        /// The offending request index.
        request: usize,
        /// The specified prompt length.
        expected: usize,
        /// The provided token count.
        actual: usize,
    },
    /// The number of prompts does not match the workload's request count.
    RequestCountMismatch {
        /// The workload's request count.
        expected: usize,
        /// The number of prompts provided.
        actual: usize,
    },
    /// An embedding lookup failed.
    Embedding(TensorError),
    /// The underlying model step failed.
    Model {
        /// The request whose step failed.
        request: usize,
        /// The model's error.
        error: E,
    },
}

impl<E: std::fmt::Debug> std::fmt::Display for BatchGenerateError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchGenerateError::PromptMismatch { request, expected, actual } => write!(
                f,
                "request {request}: prompt has {actual} token(s) but the spec says {expected}"
            ),
            BatchGenerateError::RequestCountMismatch { expected, actual } => {
                write!(f, "workload has {expected} request(s) but {actual} prompt(s) were given")
            }
            BatchGenerateError::Embedding(e) => write!(f, "embedding lookup failed: {e}"),
            BatchGenerateError::Model { request, error } => {
                write!(f, "request {request}: model step failed: {error:?}")
            }
        }
    }
}

impl<E: std::fmt::Debug> std::error::Error for BatchGenerateError<E> {}

/// Per-request driver state of the round-robin generation loop.
struct RequestState {
    fed: usize,
    out: Vec<TokenId>,
    hidden: Option<Tensor>,
}

/// Round-robin greedy generation over a batch: one interleaved round
/// advances every active request by one token (prompt tokens first, then
/// greedy decode), and request `r` joins at round `requests()[r].arrival`.
///
/// `step(request, x)` is any per-request step function (the golden
/// [`BatchDecoder::step`], a distributed executor, …) mapping a
/// `[1 x E]` embedding row to the request's next hidden row. Because the
/// driver never mixes state across requests, each request's token
/// sequence is bit-identical to running it alone through
/// [`crate::generate::generate_greedy`] — the isolation contract the
/// batching property suite locks.
///
/// Returns the decoded tokens per request, in request order.
///
/// # Errors
///
/// Rejects prompt/workload mismatches and propagates embedding and model
/// errors.
pub fn generate_greedy_batch<E>(
    embedding: &Embedding,
    workload: &BatchWorkload,
    prompts: &[Vec<TokenId>],
    mut step: impl FnMut(usize, &Tensor) -> std::result::Result<Tensor, E>,
) -> std::result::Result<Vec<Vec<TokenId>>, BatchGenerateError<E>> {
    if prompts.len() != workload.n_requests() {
        return Err(BatchGenerateError::RequestCountMismatch {
            expected: workload.n_requests(),
            actual: prompts.len(),
        });
    }
    for (r, (spec, prompt)) in workload.requests().iter().zip(prompts).enumerate() {
        if prompt.len() != spec.prompt_len {
            return Err(BatchGenerateError::PromptMismatch {
                request: r,
                expected: spec.prompt_len,
                actual: prompt.len(),
            });
        }
    }
    let mut states: Vec<RequestState> = workload
        .requests()
        .iter()
        .map(|spec| RequestState { fed: 0, out: Vec::with_capacity(spec.decode_len), hidden: None })
        .collect();
    let mut x = Tensor::default();
    let mut logits = Tensor::default();
    let mut round = 0usize;
    loop {
        let mut any_pending = false;
        for (r, (spec, state)) in workload.requests().iter().zip(&mut states).enumerate() {
            let finished = state.fed == spec.prompt_len && state.out.len() == spec.decode_len;
            if finished {
                continue;
            }
            any_pending = true;
            if round < spec.arrival {
                continue;
            }
            let token = if state.fed < spec.prompt_len {
                let t = prompts[r][state.fed];
                state.fed += 1;
                t
            } else {
                let hidden = state.hidden.as_ref().expect("prompt_len >= 1 fed a first step");
                embedding
                    .logits_into(hidden, &mut logits)
                    .map_err(BatchGenerateError::Embedding)?;
                let next = argmax_row(&logits);
                state.out.push(next);
                // The final token is fed back too (mirroring the
                // single-request driver exactly), so a request's cache
                // state — not just its tokens — matches its solo run.
                next
            };
            embedding.embed_into(token, &mut x).map_err(BatchGenerateError::Embedding)?;
            state.hidden =
                Some(step(r, &x).map_err(|error| BatchGenerateError::Model { request: r, error })?);
        }
        if !any_pending {
            return Ok(states.into_iter().map(|s| s.out).collect());
        }
        round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_greedy;
    use crate::reference::synthetic_input;
    use crate::Decoder;

    fn small_cfg() -> TransformerConfig {
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.embed_dim = 32;
        cfg.ffn_dim = 48;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 4;
        cfg.n_layers = 2;
        cfg.seq_len = 16;
        cfg
    }

    #[test]
    fn workload_validation() {
        assert!(BatchWorkload::new(vec![]).is_err());
        assert!(BatchWorkload::new(vec![RequestSpec { prompt_len: 0, decode_len: 2, arrival: 0 }])
            .is_err());
        let w = BatchWorkload::uniform(3, 4, 2);
        assert_eq!(w.n_requests(), 3);
        assert_eq!(w.max_context(), 6);
        assert!(w.validate_for(&small_cfg()).is_ok());
        let long = BatchWorkload::uniform(1, 20, 8);
        let err = long.validate_for(&small_cfg()).unwrap_err();
        assert!(err.contains("28"), "{err}");
    }

    #[test]
    fn uniformity_per_mode() {
        let mixed = BatchWorkload::new(vec![
            RequestSpec { prompt_len: 4, decode_len: 1, arrival: 0 },
            RequestSpec { prompt_len: 8, decode_len: 9, arrival: 3 },
        ])
        .unwrap();
        // Autoregressive steps always process one token per pass.
        assert!(mixed.is_uniform_for(InferenceMode::Autoregressive));
        assert!(!mixed.is_uniform_for(InferenceMode::Prompt));
        assert_eq!(mixed.tokens_per_pass(InferenceMode::Prompt), vec![4, 8]);
        assert_eq!(mixed.tokens_per_pass(InferenceMode::Autoregressive), vec![1, 1]);
        // Arrival offsets never break uniformity.
        let staggered = BatchWorkload::new(vec![
            RequestSpec { prompt_len: 4, decode_len: 2, arrival: 0 },
            RequestSpec { prompt_len: 4, decode_len: 2, arrival: 5 },
        ])
        .unwrap();
        assert!(staggered.is_uniform_for(InferenceMode::Prompt));
    }

    #[test]
    fn batch_step_is_bitwise_equal_to_solo_decoder() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 9);
        let mut batch = BatchDecoder::new(cfg.clone(), weights.clone(), 3);
        let mut solo = Decoder::new(cfg.clone(), weights);
        // Drive request 1 with a token stream while requests 0 and 2 see
        // unrelated traffic in between; request 1 must match the solo
        // decoder bit for bit at every step.
        for i in 0..5u64 {
            let noise = crate::synthetic_embeddings(&cfg, 1, 100 + i);
            let x = crate::synthetic_embeddings(&cfg, 1, i);
            batch.step(0, &noise).unwrap();
            let batched = batch.step(1, &x).unwrap();
            batch.step(2, &noise).unwrap();
            let alone = solo.step(&x).unwrap();
            assert_eq!(batched, alone, "step {i}");
        }
        assert_eq!(batch.cached_len(1), 5);
        batch.reset();
        assert_eq!(batch.cached_len(0), 0);
        assert_eq!(batch.cached_len(1), 0);
    }

    #[test]
    fn batch_of_one_equals_generate_greedy() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 4);
        let emb = Embedding::seeded(&cfg, 24, 5);
        let workload = BatchWorkload::uniform(1, 3, 6);
        let mut batch = BatchDecoder::new(cfg.clone(), weights.clone(), 1);
        let batched =
            generate_greedy_batch(&emb, &workload, &[vec![1, 2, 3]], |r, x| batch.step(r, x))
                .unwrap();
        let mut solo = Decoder::new(cfg, weights);
        let alone = generate_greedy(&emb, &[1, 2, 3], 6, |x| solo.step(x)).unwrap();
        assert_eq!(batched, vec![alone]);
    }

    #[test]
    fn arrivals_delay_but_do_not_change_outputs() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 4);
        let emb = Embedding::seeded(&cfg, 24, 5);
        let workload = BatchWorkload::new(vec![
            RequestSpec { prompt_len: 2, decode_len: 4, arrival: 0 },
            RequestSpec { prompt_len: 3, decode_len: 3, arrival: 4 },
        ])
        .unwrap();
        let prompts = vec![vec![7, 1], vec![2, 2, 9]];
        let mut batch = BatchDecoder::new(cfg.clone(), weights.clone(), 2);
        let batched =
            generate_greedy_batch(&emb, &workload, &prompts, |r, x| batch.step(r, x)).unwrap();
        for (r, prompt) in prompts.iter().enumerate() {
            let mut solo = Decoder::new(cfg.clone(), weights.clone());
            let alone =
                generate_greedy(&emb, prompt, workload.requests()[r].decode_len, |x| solo.step(x))
                    .unwrap();
            assert_eq!(batched[r], alone, "request {r}");
        }
    }

    #[test]
    fn driver_rejects_mismatched_prompts() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 4);
        let emb = Embedding::seeded(&cfg, 24, 5);
        let workload = BatchWorkload::uniform(2, 2, 1);
        let mut batch = BatchDecoder::new(cfg.clone(), weights.clone(), 2);
        let short =
            generate_greedy_batch(&emb, &workload, &[vec![1, 2], vec![3]], |r, x| batch.step(r, x));
        assert!(matches!(
            short,
            Err(BatchGenerateError::PromptMismatch { request: 1, expected: 2, actual: 1 })
        ));
        let mut batch = BatchDecoder::new(cfg, weights, 2);
        let few = generate_greedy_batch(&emb, &workload, &[vec![1, 2]], |r, x| batch.step(r, x));
        assert!(matches!(
            few,
            Err(BatchGenerateError::RequestCountMismatch { expected: 2, actual: 1 })
        ));
    }

    #[test]
    fn step_batch_threads_bit_match_sequential() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 9);
        let mut seq = BatchDecoder::new(cfg.clone(), weights.clone(), 5);
        let mut par = BatchDecoder::new(cfg, weights, 5);
        for round in 0..3u64 {
            // Slot 2 idles every round; slot 4 idles on round 1 — exercises
            // sparse batches and uneven chunking (5 slots over 3 workers).
            let xs: Vec<Option<Tensor>> = (0..5)
                .map(|r| {
                    (r != 2 && !(round == 1 && r == 4))
                        .then(|| synthetic_input(1, seq.config().embed_dim, 10 * round + r as u64))
                })
                .collect();
            let a = seq.step_batch(&xs, 1).unwrap();
            let b = par.step_batch(&xs, 3).unwrap();
            assert_eq!(a, b, "round {round}");
            assert!(a[2].is_none());
        }
        assert_eq!(seq.cached_len(0), 3);
        assert_eq!(seq.cached_len(2), 0);
        assert_eq!(seq.cached_len(4), 2);
        assert_eq!(par.cached_len(4), 2);
    }

    #[test]
    fn step_batch_matches_single_step() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 13);
        let mut batch = BatchDecoder::new(cfg.clone(), weights.clone(), 2);
        let mut solo = BatchDecoder::new(cfg, weights, 2);
        let x0 = synthetic_input(1, batch.config().embed_dim, 1);
        let x1 = synthetic_input(1, batch.config().embed_dim, 2);
        let out = batch.step_batch(&[Some(x0.clone()), Some(x1.clone())], 2).unwrap();
        assert_eq!(out[0].as_ref().unwrap(), &solo.step(0, &x0).unwrap());
        assert_eq!(out[1].as_ref().unwrap(), &solo.step(1, &x1).unwrap());
    }

    #[test]
    fn zero_decode_requests_only_prefill() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 4);
        let emb = Embedding::seeded(&cfg, 24, 5);
        let workload =
            BatchWorkload::new(vec![RequestSpec { prompt_len: 3, decode_len: 0, arrival: 0 }])
                .unwrap();
        let mut batch = BatchDecoder::new(cfg, weights, 1);
        let out = generate_greedy_batch(&emb, &workload, &[vec![1, 2, 3]], |r, x| batch.step(r, x))
            .unwrap();
        assert_eq!(out, vec![Vec::<TokenId>::new()]);
        assert_eq!(batch.cached_len(0), 3);
    }
}
