//! Integration tests of the paper's structural invariants, checked
//! end-to-end through the public API (see DESIGN.md §5).

use mtp::core::{slice_block, DistributedSystem, PartitionSpec, WeightResidency};
use mtp::model::{BlockWeights, InferenceMode, TransformerConfig};
use proptest::prelude::*;

#[test]
fn zero_weight_duplication_at_full_size() {
    let cfg = TransformerConfig::tiny_llama_42m();
    let weights = BlockWeights::seeded(&cfg, 0);
    for n in [1usize, 2, 4, 8] {
        let spec = PartitionSpec::new(&cfg, n).unwrap();
        let slices = slice_block(&weights, &spec).unwrap();
        let total: usize = slices.iter().map(|s| s.matrix_elems()).sum();
        assert_eq!(total, weights.param_count(), "n={n}: element budget must be exact");
    }
}

#[test]
fn exactly_two_synchronizations_per_block() {
    for (cfg, mode, counts) in [
        (TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, vec![1, 2, 4, 8]),
        (TransformerConfig::tiny_llama_42m().with_seq_len(16), InferenceMode::Prompt, vec![2, 8]),
        (TransformerConfig::mobile_bert(), InferenceMode::Prompt, vec![1, 2, 4]),
        (TransformerConfig::tiny_llama_scaled_64h(), InferenceMode::Autoregressive, vec![16, 64]),
    ] {
        for n in counts {
            let r = DistributedSystem::paper_default(cfg.clone(), n)
                .unwrap()
                .simulate_block(mode)
                .unwrap();
            assert_eq!(r.stats.sync_phases, 2, "{} n={n}", cfg.name);
        }
    }
}

#[test]
fn gqa_preserves_zero_duplication_and_shrinks_memory() {
    // Grouped-query attention (extension): fewer K/V heads shrink both the
    // weight slice and the KV-cache, with the exact-partition property
    // intact.
    let mha = TransformerConfig::tiny_llama_42m();
    let gqa = TransformerConfig::tiny_llama_gqa(2);
    let weights = BlockWeights::seeded(&gqa, 0);
    let spec = PartitionSpec::new(&gqa, 2).unwrap();
    let slices = slice_block(&weights, &spec).unwrap();
    let total: usize = slices.iter().map(|s| s.matrix_elems()).sum();
    assert_eq!(total, weights.param_count(), "GQA slicing must stay duplication-free");
    // 8 -> 2 kv heads: K/V weights and cache shrink 4x.
    assert!(gqa.block_weight_bytes() < mha.block_weight_bytes());
    assert_eq!(gqa.kv_cache_bytes_per_block(128) * 4, mha.kv_cache_bytes_per_block(128));
    let spec_mha = PartitionSpec::new(&mha, 2).unwrap();
    assert!(spec.slice_bytes_per_block() < spec_mha.slice_bytes_per_block());
}

#[test]
fn per_chip_l3_traffic_never_increases_with_chip_count() {
    let cfg = TransformerConfig::tiny_llama_42m();
    let mut prev = u64::MAX;
    for n in [1usize, 2, 4, 8] {
        let r = DistributedSystem::paper_default(cfg.clone(), n)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        let per_chip = r.stats.total_l3_l2_bytes() / n as u64;
        assert!(per_chip <= prev, "n={n}: per-chip L3 grew");
        prev = per_chip;
    }
}

#[test]
fn resident_regime_has_zero_steady_state_l3_traffic() {
    let cfg = TransformerConfig::tiny_llama_scaled_64h();
    let r = DistributedSystem::paper_default(cfg, 64)
        .unwrap()
        .simulate_block(InferenceMode::Autoregressive)
        .unwrap();
    assert_eq!(r.residency, WeightResidency::Resident);
    assert_eq!(r.stats.total_l3_l2_bytes(), 0);
    assert_eq!(r.energy.l3_mj, 0.0);
}

#[test]
fn total_weight_traffic_is_conserved_in_non_resident_regimes() {
    // In the streamed and double-buffered regimes, the sum of per-chip L3
    // weight traffic must equal exactly one block of weights — slicing
    // shards traffic, never multiplies it.
    let cfg = TransformerConfig::tiny_llama_42m();
    for n in [1usize, 2, 4, 8] {
        let r = DistributedSystem::paper_default(cfg.clone(), n)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        assert_eq!(
            r.stats.total_l3_l2_bytes(),
            cfg.block_weight_bytes(),
            "n={n}: L3 bytes must be exactly one block of weights"
        );
    }
}

#[test]
fn energy_formula_reconciles_with_counters() {
    let cfg = TransformerConfig::tiny_llama_42m();
    let sys = DistributedSystem::paper_default(cfg, 8).unwrap();
    let r = sys.simulate_block(InferenceMode::Autoregressive).unwrap();
    let p = sys.energy_params();
    let expect_l3 = r.stats.total_l3_l2_bytes() as f64 * p.l3_pj_per_byte * 1e-9;
    let expect_l2 = r.stats.total_l2_l1_bytes() as f64 * p.l2_pj_per_byte * 1e-9;
    let expect_c2c = r.stats.total_c2c_bytes() as f64 * p.c2c_pj_per_byte * 1e-9;
    assert!((r.energy.l3_mj - expect_l3).abs() < 1e-12);
    assert!((r.energy.l2_mj - expect_l2).abs() < 1e-12);
    assert!((r.energy.c2c_mj - expect_c2c).abs() < 1e-12);
    let compute =
        r.stats.total_compute_cycles() as f64 / p.freq_hz * p.core_power_w * p.cores as f64 * 1e3;
    assert!((r.energy.compute_mj - compute).abs() < 1e-9);
}

#[test]
fn simulation_is_deterministic() {
    let cfg = TransformerConfig::tiny_llama_scaled_64h();
    let sys = DistributedSystem::paper_default(cfg, 16).unwrap();
    let a = sys.simulate_block(InferenceMode::Autoregressive).unwrap();
    let b = sys.simulate_block(InferenceMode::Autoregressive).unwrap();
    assert_eq!(a.stats, b.stats);
}

#[test]
fn breakdown_sums_to_makespan_on_critical_chip() {
    for n in [1usize, 4, 8] {
        let cfg = TransformerConfig::tiny_llama_42m();
        let r = DistributedSystem::paper_default(cfg, n)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        assert_eq!(r.breakdown().total(), r.stats.makespan, "n={n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Zero duplication holds for arbitrary valid (dims, chips).
    #[test]
    fn prop_partition_is_exact(
        heads_pow in 0usize..=4,
        chips_pow in 0usize..=4,
        head_dim in prop::sample::select(vec![2usize, 4, 8]),
        f_mult in 1usize..=4,
        seed in 0u64..100,
    ) {
        let heads = 1 << heads_pow;
        let chips = 1 << chips_pow;
        prop_assume!(chips <= heads);
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.embed_dim = heads * head_dim;
        cfg.n_heads = heads;
        cfg.n_kv_heads = heads;
        cfg.ffn_dim = cfg.embed_dim * f_mult;
        prop_assume!(cfg.ffn_dim.is_multiple_of(chips));
        let weights = BlockWeights::seeded(&cfg, seed);
        let spec = PartitionSpec::new(&cfg, chips).unwrap();
        let slices = slice_block(&weights, &spec).unwrap();
        let total: usize = slices.iter().map(|s| s.matrix_elems()).sum();
        prop_assert_eq!(total, weights.param_count());
        // And byte accounting agrees with the analytical spec.
        prop_assert_eq!(
            spec.slice_bytes_per_block() * chips as u64,
            cfg.block_weight_bytes()
        );
    }

    /// Makespan never decreases when blocks are appended (sanity of the
    /// event-driven executor under chained schedules).
    #[test]
    fn prop_makespan_monotone_in_blocks(blocks in 1usize..4) {
        let cfg = TransformerConfig::tiny_llama_42m();
        let sys = DistributedSystem::paper_default(cfg, 8).unwrap();
        let a = sys.simulate_blocks(InferenceMode::Autoregressive, blocks).unwrap();
        let b = sys.simulate_blocks(InferenceMode::Autoregressive, blocks + 1).unwrap();
        prop_assert!(b.stats.makespan > a.stats.makespan);
    }
}
