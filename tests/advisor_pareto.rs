//! Pareto-correctness properties for the design-space advisor
//! (DESIGN.md §15): the flagged frontier must contain no dominated
//! point, every dominated point must be dominated by a frontier point,
//! and the recommendation must be exactly the smallest feasible design
//! under the documented tie-breaks.

use mtp::harness::advisor::{advise, pareto_flags, Constraints, DesignSpace};
use mtp::harness::sweep::{PlacementPolicy, TopologySpec};
use mtp::model::{InferenceMode, TransformerConfig};
use proptest::prelude::*;

fn dominates(a: &(u64, f64, usize), b: &(u64, f64, usize)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
}

/// Deterministic objective triples from a seed (small ranges on purpose:
/// duplicates and total ties must be common).
fn random_points(n: usize, seed: u64) -> Vec<(u64, f64, usize)> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n).map(|_| (next() % 20, (next() % 20) as f64, (next() % 4 + 1) as usize)).collect()
}

/// Picks the subset of `options` selected by the bits of `mask`
/// (callers pass a non-zero mask so the subset is non-empty).
fn masked<T: Copy>(options: &[T], mask: usize) -> Vec<T> {
    options.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &o)| o).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural properties of the frontier over arbitrary objective
    /// triples, including duplicates and total ties.
    #[test]
    fn prop_pareto_flags_are_sound_and_complete(
        n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let pts = random_points(n, seed);
        let flags = pareto_flags(&pts);
        prop_assert_eq!(flags.len(), pts.len());
        // Soundness: no flagged point is dominated by any point.
        for (i, &flag) in flags.iter().enumerate() {
            if flag {
                prop_assert!(!pts.iter().any(|q| dominates(q, &pts[i])));
            }
        }
        // Completeness: every unflagged point is dominated by a flagged
        // one (dominance chains end at the frontier).
        for (i, &flag) in flags.iter().enumerate() {
            if !flag {
                prop_assert!(
                    flags.iter().zip(&pts).any(|(&f, q)| f && dominates(q, &pts[i])),
                    "dominated point {i} has no dominating frontier point"
                );
            }
        }
        // A non-empty space always has a frontier.
        prop_assert!(flags.iter().any(|&f| f));
    }
}

proptest! {
    // Each case runs a full (cached, symbolic) design-space search, so
    // keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end advisor properties on real searches: frontier
    /// soundness and the smallest-feasible recommendation contract.
    #[test]
    fn prop_advisor_frontier_and_recommendation(
        latency_ms in prop::sample::select(vec![
            None,
            Some(0.001f64),
            Some(3.5),
            Some(5.0),
            Some(25.0),
            Some(90.0),
        ]),
        energy_mj in prop::sample::select(vec![None, Some(3.0f64), Some(3.6), Some(4.0)]),
        chips_mask in 1usize..16,
        pcts_mask in 1usize..16,
    ) {
        let cfg = TransformerConfig::tiny_llama_42m();
        let constraints = Constraints { max_latency_ms: latency_ms, max_energy_mj: energy_mj };
        let space = DesignSpace {
            topologies: vec![TopologySpec::PaperDefault, TopologySpec::Flat],
            placements: vec![PlacementPolicy::Auto],
            chip_counts: masked(&[1, 2, 4, 8], chips_mask),
            link_bw_pcts: masked(&[20, 40, 70, 100], pcts_mask),
        };
        let advice = advise(&cfg, InferenceMode::Autoregressive, constraints, &space).unwrap();
        let objectives: Vec<(u64, f64, usize)> = advice
            .candidates
            .iter()
            .map(|c| (c.makespan(), c.report.energy_mj(), c.point.n_chips))
            .collect();
        // No flagged candidate is dominated by any candidate.
        for (i, c) in advice.candidates.iter().enumerate() {
            if c.pareto {
                prop_assert!(
                    !objectives.iter().any(|q| dominates(q, &objectives[i])),
                    "flagged point {} is dominated",
                    c.point.label()
                );
            }
            // Feasibility flags agree with the constraints.
            prop_assert_eq!(c.feasible, constraints.satisfied_by(&c.report));
        }
        match advice.recommended {
            Some(r) => {
                let rec = &advice.candidates[r];
                prop_assert!(rec.feasible);
                // No feasible candidate uses fewer chips, and among
                // equal-chip feasible candidates none is strictly
                // better on (makespan, energy).
                for c in advice.candidates.iter().filter(|c| c.feasible) {
                    prop_assert!(c.point.n_chips >= rec.point.n_chips);
                    if c.point.n_chips == rec.point.n_chips {
                        prop_assert!(
                            (c.makespan(), c.report.energy_mj())
                                >= (rec.makespan(), rec.report.energy_mj())
                        );
                    }
                }
            }
            None => {
                prop_assert!(advice.candidates.iter().all(|c| !c.feasible));
            }
        }
    }
}
