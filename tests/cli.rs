//! Table-driven coverage of the `mtp` CLI surface: every flag spelling
//! of `mtp sweep`, `mtp serve`, `mtp advise`, and `mtp bench` that
//! parses, and every rejection path with its exact exit code and error
//! message. The
//! messages are part of the CLI contract — scripts grep them — so each
//! invalid case locks the wording, not just the failure.

use std::process::{Command, Output};

fn mtp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mtp")).args(args).output().expect("spawn mtp")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

// ---------------------------------------------------------------------
// Rejection paths: exit code 1, `error: ` prefix, exact wording.
// ---------------------------------------------------------------------

/// Every invalid spelling the three subcommands reject, with the exact
/// message fragment the CLI must print. All of these fail during
/// argument parsing, so they are cheap no matter the subcommand.
#[test]
fn invalid_flags_exit_nonzero_with_exact_messages() {
    let cases: &[(&[&str], &str)] = &[
        (&["bogus"], "unknown command `bogus`"),
        // sweep: base-grid and sink conflicts
        (
            &["sweep", "--deep", "--batch"],
            "--deep and --batch are mutually exclusive base grids \
             (use --deep --batches N,M for a batched deep sweep)",
        ),
        (
            &["sweep", "--stream", "--csv", "a.csv", "--json", "b.json"],
            "--stream writes one sink at a time (drop --csv or --json)",
        ),
        // sweep: axis vocabulary
        (&["sweep", "--models", "nope"], "unknown model `nope`"),
        (&["sweep", "--modes", "fast"], "unknown mode `fast` (ar|prompt)"),
        (&["sweep", "--chips", "two"], "bad chip count `two`"),
        (&["sweep", "--link-bw", "0"], "bad link bandwidth percentage `0`"),
        (&["sweep", "--batches", "0"], "bad batch size `0` (need a positive integer)"),
        (&["sweep", "--chips", ","], "the grid is empty (every axis needs at least one value)"),
        // sweep: link-regime spellings
        (
            &["sweep", "--link-regime", "warp"],
            "unknown link regime 'warp' (expected affine, queued[:BYTES], \
             droptail:BYTES[:NACK], or lossy:PERMILLE[:NACK])",
        ),
        (
            &["sweep", "--link-regime", "queued:0"],
            "queued buffer wants a positive byte count, got '0'",
        ),
        (
            &["sweep", "--link-regime", "droptail:4096:soon"],
            "droptail NACK wants cycles, got 'soon'",
        ),
        (
            &["sweep", "--link-regime", "lossy:1000"],
            "lossy rate must be 1..=999 per mille, got 1000 (use 'affine' for a lossless link)",
        ),
        // serve: arrival processes
        (
            &["serve", "--arrivals", "bogus"],
            "unknown arrival process `bogus` (expected poisson:RATE, bursty:RATE:BURST, or \
             trace:C1,C2,...)",
        ),
        (
            &["serve", "--arrivals", "poisson:0"],
            "bad arrival rate `0` (need a finite rate > 0 in requests per megacycle)",
        ),
        (
            &["serve", "--arrivals", "poisson:inf"],
            "bad arrival rate `inf` (need a finite rate > 0 in requests per megacycle)",
        ),
        (&["serve", "--arrivals", "bursty:2"], "bad bursty spec `2` (expected bursty:RATE:BURST)"),
        (&["serve", "--arrivals", "bursty:2:0"], "bad burst size `0` (need a positive integer)"),
        (
            &["serve", "--arrivals", "trace:10,soon"],
            "bad trace cycle `soon` (need a non-negative integer)",
        ),
        (
            &["serve", "--arrivals", ";"],
            "the serving grid is empty (every axis needs at least one value)",
        ),
        // serve: policies, billing, shape
        (
            &["serve", "--policies", "lru:4"],
            "unknown batch policy `lru:4` (expected static:BATCH or continuous:SLOTS)",
        ),
        (&["serve", "--policies", "static:0"], "bad batch size `0` (need a positive integer)"),
        (&["serve", "--policies", "continuous:0"], "bad slot count `0` (need a positive integer)"),
        (
            &["serve", "--billing", "half"],
            "unknown billing model `half` (expected full or per-request)",
        ),
        (&["serve", "--requests", "0"], "bad request count `0` (need a positive integer)"),
        (&["serve", "--prompt-len", "0"], "bad prompt length `0` (need a positive integer)"),
        (&["serve", "--decode-len", "-1"], "bad decode length `-1` (need a non-negative integer)"),
        (&["serve", "--seed", "-1"], "bad seed `-1`"),
        (&["serve", "--models", "nope"], "unknown model `nope`"),
        (&["serve", "--chips", "two"], "bad chip count `two`"),
        // sweep: fault plans, failover policy, cost source
        (
            &["sweep", "--faults", "meteor"],
            "unknown fault event 'meteor' (expected failstop:CHIP:AT, stall:CHIP:AT:DUR, \
             slow:CHIP:FROM:DUR:PCT, flap:CHIP:FROM:DUR:PCT, or seeded:SEED:COUNT[:HORIZON])",
        ),
        (
            &["sweep", "--faults", "seeded:1:2+stall:0:1:100"],
            "seeded fault plans cannot combine with '+' events",
        ),
        (
            &["sweep", "--faults", "slow:0:0:1000:50"],
            "slow factor is percent of nominal duration and must exceed 100, got 50",
        ),
        (&["sweep", "--faults", "stall:0:0:0"], "stall duration must be positive"),
        (
            &["sweep", "--fail-policy", "keep"],
            "unknown fail policy `keep` (expected abort, restart, or spare)",
        ),
        (&["sweep", "--cost-source", "magic"], "unknown cost source `magic` (analytic|calibrated)"),
        // serve: fault profiles
        (
            &["serve", "--faults", "chaos"],
            "unknown fault profile `chaos` \
             (expected none or fail:PERMILLE[:RETRIES[:TIMEOUT_KCYC[:QCAP]]])",
        ),
        (&["serve", "--faults", "fail:2000"], "bad failure rate `2000` (need 0..=1000 per mille)"),
        (
            &["serve", "--faults", "fail:100:1:0:0"],
            "bad queue capacity `0` (need a positive integer)",
        ),
        (
            &["serve", "--faults", ","],
            "the serving grid is empty (every axis needs at least one value)",
        ),
        // advise: model/axis vocabulary and bandwidth-range grammar
        (&["advise", "--model", "nope"], "unknown model `nope`"),
        (&["advise", "--chips", "two"], "bad chip count `two`"),
        (&["advise", "--link-bw", "0"], "bad link bandwidth `0` (want PCT or LO..HI[:STEP])"),
        (
            &["advise", "--link-bw", "50..40"],
            "bad link bandwidth `50..40` (want PCT or LO..HI[:STEP])",
        ),
        (
            &["advise", "--link-bw", "10..20:0"],
            "bad link bandwidth `10..20:0` (want PCT or LO..HI[:STEP])",
        ),
    ];
    for (args, fragment) in cases {
        let out = mtp(args);
        assert_eq!(out.status.code(), Some(1), "{args:?} must exit 1");
        let err = stderr(&out);
        assert!(err.starts_with("error: "), "{args:?}: stderr `{err}` lacks the error prefix");
        assert!(err.contains(fragment), "{args:?}: stderr `{err}` lacks `{fragment}`");
    }
}

/// `mtp bench --check` without a baseline is rejected (after the quick
/// run — the flag is validated where the comparison would happen).
#[test]
fn bench_check_without_compare_is_rejected() {
    let out = mtp(&["bench", "--quick", "--check"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--check requires --compare <BENCH_N.json>"));
}

// ---------------------------------------------------------------------
// Accepted spellings: exit 0 and the expected output shape.
// ---------------------------------------------------------------------

#[test]
fn help_and_bare_invocation_print_usage() {
    for args in [&[][..], &["--help"][..], &["-h"][..]] {
        let out = mtp(args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        let text = stdout(&out);
        assert!(text.contains("mtp simulate"), "{args:?}");
        assert!(text.contains("mtp serve"), "{args:?}");
        assert!(text.contains("mtp sweep"), "{args:?}");
    }
}

/// A small sweep accepting every link-regime spelling in one grid.
#[test]
fn sweep_accepts_every_link_regime_spelling() {
    let out = mtp(&[
        "sweep",
        "--models",
        "tinyllama",
        "--modes",
        "ar",
        "--chips",
        "2",
        "--topologies",
        "hier4",
        "--serial",
        "--link-regime",
        "affine,queued,queued:65536,droptail:65536:700,lossy:5:700",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for label in ["@q65536", "@qdrop65536n700", "@loss5n700"] {
        assert!(text.contains(label), "missing regime-tagged row `{label}` in:\n{text}");
    }
    assert!(text.contains("5 scenario(s)"), "{text}");
}

/// A small serving grid across both policies and billing models, with
/// every shape flag exercised and CSV/JSON sinks written.
#[test]
fn serve_runs_a_small_grid_and_writes_sinks() {
    let dir = std::env::temp_dir().join(format!("mtp-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("serve.csv");
    let json_path = dir.join("serve.json");
    let out = mtp(&[
        "serve",
        "--models",
        "tinyllama",
        "--chips",
        "2",
        "--arrivals",
        "trace:0,0,0;poisson:2",
        "--policies",
        "static:2,continuous:2",
        "--billing",
        "full,per-request",
        "--requests",
        "3",
        "--prompt-len",
        "8",
        "--decode-len",
        "2",
        "--seed",
        "7",
        "--csv",
        csv_path.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("ttft_p50"), "{text}");
    assert!(text.contains("8 serving scenario(s)"), "{text}");

    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let header = csv.lines().next().unwrap();
    for col in ["ttft_p50", "ttft_p95", "ttft_p99", "tpot_p99", "slo_ok", "goodput_rps"] {
        assert!(header.contains(col), "CSV header misses `{col}`: {header}");
    }
    assert_eq!(csv.lines().count(), 9, "8 rows + header");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"ttft_p99\":"));

    // Determinism across processes: a second run writes identical bytes.
    let csv2_path = dir.join("serve2.csv");
    let out2 = mtp(&[
        "serve",
        "--models",
        "tinyllama",
        "--chips",
        "2",
        "--arrivals",
        "trace:0,0,0;poisson:2",
        "--policies",
        "static:2,continuous:2",
        "--billing",
        "full,per-request",
        "--requests",
        "3",
        "--prompt-len",
        "8",
        "--decode-len",
        "2",
        "--seed",
        "7",
        "--csv",
        csv2_path.to_str().unwrap(),
    ]);
    assert_eq!(out2.status.code(), Some(0));
    assert_eq!(csv, std::fs::read_to_string(&csv2_path).unwrap(), "serve CSV not reproducible");
    std::fs::remove_dir_all(&dir).ok();
}

/// A small design-space search over every advise axis, including the
/// `LO..HI:STEP` bandwidth-range grammar, with CSV/JSON sinks written
/// and a second process reproducing the CSV byte for byte.
#[test]
fn advise_searches_a_space_and_writes_deterministic_sinks() {
    let dir = std::env::temp_dir().join(format!("mtp-cli-advise-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |csv: &std::path::Path, json: Option<&std::path::Path>| {
        let mut args = vec![
            "advise",
            "--model",
            "tinyllama",
            "--mode",
            "ar",
            "--latency-ms",
            "5",
            "--chips",
            "1,8",
            "--topologies",
            "hier4,flat",
            "--placements",
            "auto",
            "--link-bw",
            "25,50..100:25",
            "--csv",
            csv.to_str().unwrap(),
        ];
        if let Some(j) = json {
            args.extend(["--json", j.to_str().unwrap()]);
        }
        mtp(&args)
    };
    let csv_a = dir.join("advise-a.csv");
    let json_a = dir.join("advise-a.json");
    let out = run(&csv_a, Some(&json_a));
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Pareto frontier"), "{text}");
    assert!(text.contains("recommendation: 8chips/"), "{text}");

    let csv = std::fs::read_to_string(&csv_a).unwrap();
    let header = csv.lines().next().unwrap();
    for col in ["link_bw_pct", "pareto", "feasible", "recommended"] {
        assert!(header.contains(col), "CSV header misses `{col}`: {header}");
    }
    // 2 chip counts x 2 topologies x 1 placement x 4 bandwidths (25 and
    // the 50..100:25 range), single-chip topologies both evaluated.
    assert_eq!(csv.lines().count(), 17, "16 rows + header:\n{csv}");
    assert_eq!(csv.matches(",1\n").count(), 1, "exactly one recommended row:\n{csv}");
    let json = std::fs::read_to_string(&json_a).unwrap();
    assert!(json.contains("\"recommended\":true"), "{json}");

    let csv_b = dir.join("advise-b.csv");
    let out2 = run(&csv_b, None);
    assert_eq!(out2.status.code(), Some(0));
    assert_eq!(csv, std::fs::read_to_string(&csv_b).unwrap(), "advise CSV not reproducible");
    std::fs::remove_dir_all(&dir).ok();
}

/// An unwritable sink path is a clean exit-1 error, not a panic.
#[test]
fn unwritable_sink_path_is_a_typed_error() {
    for sub in ["sweep", "serve"] {
        let out = mtp(&[
            sub,
            "--models",
            "tinyllama",
            "--chips",
            "2",
            "--csv",
            "/nonexistent-mtp-dir/out.csv",
        ]);
        assert_eq!(out.status.code(), Some(1), "{sub} must exit 1 on a bad sink");
        assert!(stderr(&out).starts_with("error: "), "{sub}: {}", stderr(&out));
    }
}

/// A faulted sweep runs every fault-plan spelling, tags the span
/// column, and writes byte-identical CSV across two processes (the
/// cross-process half of the determinism proof — same binary, fresh
/// caches, same bytes).
#[test]
fn faulted_sweep_is_reproducible_across_processes() {
    let dir = std::env::temp_dir().join(format!("mtp-cli-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |csv: &std::path::Path| {
        mtp(&[
            "sweep",
            "--models",
            "tinyllama",
            "--modes",
            "ar",
            "--chips",
            "4",
            "--topologies",
            "hier4",
            "--faults",
            "none;stall:0:1000:5000+slow:1:0:50000:150;seeded:7:3;failstop:0:200000",
            "--fail-policy",
            "spare",
            "--csv",
            csv.to_str().unwrap(),
        ])
    };
    let a_path = dir.join("a.csv");
    let b_path = dir.join("b.csv");
    let out = run(&a_path);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for label in ["st0@1000x5000", "seed7c3", "fs0@200000"] {
        assert!(text.contains(label), "missing fault-tagged row `{label}` in:\n{text}");
    }
    assert_eq!(run(&b_path).status.code(), Some(0));
    let a = std::fs::read_to_string(&a_path).unwrap();
    let b = std::fs::read_to_string(&b_path).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "faulted sweep CSV not reproducible across processes");
    std::fs::remove_dir_all(&dir).ok();
}

/// A faulted serving run reports the degraded-mode columns and is
/// byte-identical across two processes.
#[test]
fn faulted_serve_is_reproducible_across_processes() {
    let dir = std::env::temp_dir().join(format!("mtp-cli-fserve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |csv: &std::path::Path| {
        mtp(&[
            "serve",
            "--models",
            "tinyllama",
            "--chips",
            "4",
            "--arrivals",
            "poisson:2",
            "--policies",
            "continuous:4",
            "--requests",
            "12",
            "--prompt-len",
            "8",
            "--decode-len",
            "2",
            "--faults",
            "none,fail:300:1:0:4",
            "--csv",
            csv.to_str().unwrap(),
        ])
    };
    let a_path = dir.join("a.csv");
    let b_path = dir.join("b.csv");
    let out = run(&a_path);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("f300r1q4"), "{}", stdout(&out));
    let a = std::fs::read_to_string(&a_path).unwrap();
    let header = a.lines().next().unwrap();
    for col in ["faults", "availability", "retries", "sheds", "timeouts", "failed"] {
        assert!(header.contains(col), "CSV header misses `{col}`: {header}");
    }
    assert_eq!(a.lines().count(), 3, "2 rows + header");
    assert_eq!(run(&b_path).status.code(), Some(0));
    assert_eq!(
        a,
        std::fs::read_to_string(&b_path).unwrap(),
        "faulted serve CSV not reproducible across processes"
    );
    std::fs::remove_dir_all(&dir).ok();
}
