//! Table-driven coverage of the `mtp` CLI surface: every flag spelling
//! of `mtp sweep`, `mtp serve`, and `mtp bench` that parses, and every
//! rejection path with its exact exit code and error message. The
//! messages are part of the CLI contract — scripts grep them — so each
//! invalid case locks the wording, not just the failure.

use std::process::{Command, Output};

fn mtp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mtp")).args(args).output().expect("spawn mtp")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

// ---------------------------------------------------------------------
// Rejection paths: exit code 1, `error: ` prefix, exact wording.
// ---------------------------------------------------------------------

/// Every invalid spelling the three subcommands reject, with the exact
/// message fragment the CLI must print. All of these fail during
/// argument parsing, so they are cheap no matter the subcommand.
#[test]
fn invalid_flags_exit_nonzero_with_exact_messages() {
    let cases: &[(&[&str], &str)] = &[
        (&["bogus"], "unknown command `bogus`"),
        // sweep: base-grid and sink conflicts
        (
            &["sweep", "--deep", "--batch"],
            "--deep and --batch are mutually exclusive base grids \
             (use --deep --batches N,M for a batched deep sweep)",
        ),
        (
            &["sweep", "--stream", "--csv", "a.csv", "--json", "b.json"],
            "--stream writes one sink at a time (drop --csv or --json)",
        ),
        // sweep: axis vocabulary
        (&["sweep", "--models", "nope"], "unknown model `nope`"),
        (&["sweep", "--modes", "fast"], "unknown mode `fast` (ar|prompt)"),
        (&["sweep", "--chips", "two"], "bad chip count `two`"),
        (&["sweep", "--link-bw", "0"], "bad link bandwidth percentage `0`"),
        (&["sweep", "--batches", "0"], "bad batch size `0` (need a positive integer)"),
        (&["sweep", "--chips", ","], "the grid is empty (every axis needs at least one value)"),
        // sweep: link-regime spellings
        (
            &["sweep", "--link-regime", "warp"],
            "unknown link regime 'warp' (expected affine, queued[:BYTES], \
             droptail:BYTES[:NACK], or lossy:PERMILLE[:NACK])",
        ),
        (
            &["sweep", "--link-regime", "queued:0"],
            "queued buffer wants a positive byte count, got '0'",
        ),
        (
            &["sweep", "--link-regime", "droptail:4096:soon"],
            "droptail NACK wants cycles, got 'soon'",
        ),
        (
            &["sweep", "--link-regime", "lossy:1000"],
            "lossy rate must be 1..=999 per mille, got 1000 (use 'affine' for a lossless link)",
        ),
        // serve: arrival processes
        (
            &["serve", "--arrivals", "bogus"],
            "unknown arrival process `bogus` (expected poisson:RATE, bursty:RATE:BURST, or \
             trace:C1,C2,...)",
        ),
        (
            &["serve", "--arrivals", "poisson:0"],
            "bad arrival rate `0` (need a finite rate > 0 in requests per megacycle)",
        ),
        (
            &["serve", "--arrivals", "poisson:inf"],
            "bad arrival rate `inf` (need a finite rate > 0 in requests per megacycle)",
        ),
        (&["serve", "--arrivals", "bursty:2"], "bad bursty spec `2` (expected bursty:RATE:BURST)"),
        (&["serve", "--arrivals", "bursty:2:0"], "bad burst size `0` (need a positive integer)"),
        (
            &["serve", "--arrivals", "trace:10,soon"],
            "bad trace cycle `soon` (need a non-negative integer)",
        ),
        (
            &["serve", "--arrivals", ";"],
            "the serving grid is empty (every axis needs at least one value)",
        ),
        // serve: policies, billing, shape
        (
            &["serve", "--policies", "lru:4"],
            "unknown batch policy `lru:4` (expected static:BATCH or continuous:SLOTS)",
        ),
        (&["serve", "--policies", "static:0"], "bad batch size `0` (need a positive integer)"),
        (&["serve", "--policies", "continuous:0"], "bad slot count `0` (need a positive integer)"),
        (
            &["serve", "--billing", "half"],
            "unknown billing model `half` (expected full or per-request)",
        ),
        (&["serve", "--requests", "0"], "bad request count `0` (need a positive integer)"),
        (&["serve", "--prompt-len", "0"], "bad prompt length `0` (need a positive integer)"),
        (&["serve", "--decode-len", "-1"], "bad decode length `-1` (need a non-negative integer)"),
        (&["serve", "--seed", "-1"], "bad seed `-1`"),
        (&["serve", "--models", "nope"], "unknown model `nope`"),
        (&["serve", "--chips", "two"], "bad chip count `two`"),
    ];
    for (args, fragment) in cases {
        let out = mtp(args);
        assert_eq!(out.status.code(), Some(1), "{args:?} must exit 1");
        let err = stderr(&out);
        assert!(err.starts_with("error: "), "{args:?}: stderr `{err}` lacks the error prefix");
        assert!(err.contains(fragment), "{args:?}: stderr `{err}` lacks `{fragment}`");
    }
}

/// `mtp bench --check` without a baseline is rejected (after the quick
/// run — the flag is validated where the comparison would happen).
#[test]
fn bench_check_without_compare_is_rejected() {
    let out = mtp(&["bench", "--quick", "--check"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--check requires --compare <BENCH_N.json>"));
}

// ---------------------------------------------------------------------
// Accepted spellings: exit 0 and the expected output shape.
// ---------------------------------------------------------------------

#[test]
fn help_and_bare_invocation_print_usage() {
    for args in [&[][..], &["--help"][..], &["-h"][..]] {
        let out = mtp(args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        let text = stdout(&out);
        assert!(text.contains("mtp simulate"), "{args:?}");
        assert!(text.contains("mtp serve"), "{args:?}");
        assert!(text.contains("mtp sweep"), "{args:?}");
    }
}

/// A small sweep accepting every link-regime spelling in one grid.
#[test]
fn sweep_accepts_every_link_regime_spelling() {
    let out = mtp(&[
        "sweep",
        "--models",
        "tinyllama",
        "--modes",
        "ar",
        "--chips",
        "2",
        "--topologies",
        "hier4",
        "--serial",
        "--link-regime",
        "affine,queued,queued:65536,droptail:65536:700,lossy:5:700",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for label in ["@q65536", "@qdrop65536n700", "@loss5n700"] {
        assert!(text.contains(label), "missing regime-tagged row `{label}` in:\n{text}");
    }
    assert!(text.contains("5 scenario(s)"), "{text}");
}

/// A small serving grid across both policies and billing models, with
/// every shape flag exercised and CSV/JSON sinks written.
#[test]
fn serve_runs_a_small_grid_and_writes_sinks() {
    let dir = std::env::temp_dir().join(format!("mtp-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("serve.csv");
    let json_path = dir.join("serve.json");
    let out = mtp(&[
        "serve",
        "--models",
        "tinyllama",
        "--chips",
        "2",
        "--arrivals",
        "trace:0,0,0;poisson:2",
        "--policies",
        "static:2,continuous:2",
        "--billing",
        "full,per-request",
        "--requests",
        "3",
        "--prompt-len",
        "8",
        "--decode-len",
        "2",
        "--seed",
        "7",
        "--csv",
        csv_path.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("ttft_p50"), "{text}");
    assert!(text.contains("8 serving scenario(s)"), "{text}");

    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let header = csv.lines().next().unwrap();
    for col in ["ttft_p50", "ttft_p95", "ttft_p99", "tpot_p99", "slo_ok", "goodput_rps"] {
        assert!(header.contains(col), "CSV header misses `{col}`: {header}");
    }
    assert_eq!(csv.lines().count(), 9, "8 rows + header");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"ttft_p99\":"));

    // Determinism across processes: a second run writes identical bytes.
    let csv2_path = dir.join("serve2.csv");
    let out2 = mtp(&[
        "serve",
        "--models",
        "tinyllama",
        "--chips",
        "2",
        "--arrivals",
        "trace:0,0,0;poisson:2",
        "--policies",
        "static:2,continuous:2",
        "--billing",
        "full,per-request",
        "--requests",
        "3",
        "--prompt-len",
        "8",
        "--decode-len",
        "2",
        "--seed",
        "7",
        "--csv",
        csv2_path.to_str().unwrap(),
    ]);
    assert_eq!(out2.status.code(), Some(0));
    assert_eq!(csv, std::fs::read_to_string(&csv2_path).unwrap(), "serve CSV not reproducible");
    std::fs::remove_dir_all(&dir).ok();
}
