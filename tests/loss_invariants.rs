//! Loss-accounting invariants for the packet-level link regimes
//! (DESIGN.md §11), as property tests:
//!
//! - **Drop-tail**: every drop is NACKed and retransmitted exactly once
//!   per dropped attempt, so `retransmits == drops` — the
//!   `retransmits >= drops` invariant holds with equality, across
//!   randomized message sizes, buffer slack, and NACK penalties on the
//!   canonical contended fan-in workload.
//! - **Lossy go-back-N**: one drop retransmits up to a full window, so
//!   `retransmits >= drops` on every chip of real sweep scenarios.
//! - **Contention-free regimes**: affine rows keep all four queue/loss
//!   counters at zero; an infinite-buffer queued row may observe queue
//!   occupancy and port-serialization delay, but can never drop or
//!   retransmit.
//! - **Reproducibility**: the counters are pure functions of the
//!   scenario — cold reruns agree bit for bit.

use mtp::harness::sweep::{ModelPreset, SweepGrid};
use mtp::kernels::Kernel;
use mtp::model::InferenceMode;
use mtp::sim::{ChipSpec, Instr, LinkRegime, Machine, Program, QueueDiscipline, RunStats};
use proptest::prelude::*;

/// A small pool of real scenario shapes (model, mode, chip count) the
/// regimes are exercised on. Chip counts above 1 so the link is used.
fn shape(ix: usize) -> (ModelPreset, InferenceMode, usize) {
    let pool = [
        (ModelPreset::TinyLlama, InferenceMode::Autoregressive, 2),
        (ModelPreset::TinyLlama, InferenceMode::Autoregressive, 4),
        (ModelPreset::TinyLlama, InferenceMode::Prompt, 8),
        (ModelPreset::MobileBert, InferenceMode::Prompt, 4),
    ];
    pool[ix % pool.len()]
}

/// Builds a single scenario from the pool with the given regime, runs
/// it, and returns its stats.
fn run_with_regime(ix: usize, regime: LinkRegime) -> RunStats {
    let (preset, mode, n_chips) = shape(ix);
    let grid = SweepGrid::new(vec![(preset.config(mode), mode)], vec![n_chips])
        .with_link_regimes(vec![regime]);
    let scenario = grid.scenarios().remove(0);
    scenario.run().expect("pool scenarios are valid").stats
}

/// Two concurrent senders into one receiver that drains slowly — the
/// canonical contended-ingress workload (the same shape the simulator's
/// own regime unit tests use). Chip 1 always wins the shared RX port,
/// so a buffer holding one message but not two forces chip 2's message
/// to drop and retry — never a head-of-line deadlock.
fn contended_fan_in(bytes: u64) -> Vec<Program> {
    let p0 = Program::from_instrs([
        Instr::compute(Kernel::gemm(64, 512, 512)),
        Instr::recv(1, 1),
        Instr::compute(Kernel::Add { n: 1024 }),
        Instr::recv(2, 2),
    ]);
    let p1 = Program::from_instrs([Instr::send(0, 1, bytes)]);
    let p2 = Program::from_instrs([Instr::send(0, 2, bytes)]);
    vec![p0, p1, p2]
}

fn machine_with_regime(n: usize, regime: LinkRegime) -> Machine {
    let mut spec = ChipSpec::siracusa();
    spec.link_regime = regime;
    Machine::homogeneous(spec, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drop-tail retransmits exactly what it drops — one NACKed
    /// retransmission per dropped attempt, whatever the message size,
    /// buffer slack, and NACK penalty.
    #[test]
    fn prop_droptail_retransmits_equal_drops(
        msg_kb in 2u64..20,
        slack_pct in 0u64..100,
        nack in 100u64..2000,
    ) {
        let bytes = msg_kb * 1024;
        // Buffer holds the first message but not both: chip 2's send is
        // dropped until the first receive returns credit.
        let buffer_bytes = bytes + bytes * slack_pct / 100;
        let regime = LinkRegime::Queued {
            buffer_bytes,
            discipline: QueueDiscipline::DropTail { nack_cycles: nack },
        };
        let stats = machine_with_regime(3, regime).run(&contended_fan_in(bytes)).unwrap();
        prop_assert!(stats.total_drops() > 0, "the parked attempt must drop");
        prop_assert_eq!(stats.total_retransmits(), stats.total_drops());
        for chip in &stats.per_chip {
            prop_assert_eq!(chip.c2c_retransmits, chip.c2c_drops);
        }
    }

    /// Go-back-N retransmits at least one packet per drop (a drop can
    /// resend a whole window, never less than itself) — on real sweep
    /// scenarios across loss rates.
    #[test]
    fn prop_lossy_retransmits_cover_drops(
        ix in 0usize..4,
        per_mille in 1u32..400,
        nack in 100u64..2000,
    ) {
        let regime = LinkRegime::Lossy { drop_per_mille: per_mille, nack_cycles: nack };
        let stats = run_with_regime(ix, regime);
        prop_assert!(stats.total_drops() > 0, "a lossy run at {}permille must drop", per_mille);
        prop_assert!(
            stats.total_retransmits() >= stats.total_drops(),
            "retransmits {} < drops {}",
            stats.total_retransmits(),
            stats.total_drops()
        );
        for chip in &stats.per_chip {
            prop_assert!(chip.c2c_retransmits >= chip.c2c_drops);
        }
    }

    /// The affine model has no queue and no loss: all four counters stay
    /// zero on every chip of every real scenario.
    #[test]
    fn prop_affine_counters_are_all_zero(ix in 0usize..4) {
        let stats = run_with_regime(ix, LinkRegime::Affine);
        for chip in &stats.per_chip {
            prop_assert_eq!(chip.c2c_drops, 0);
            prop_assert_eq!(chip.c2c_retransmits, 0);
            prop_assert_eq!(chip.c2c_queue_cycles, 0);
            prop_assert_eq!(chip.c2c_peak_queue_bytes, 0);
        }
    }

    /// An infinite buffer can hold bytes and serialize the shared RX
    /// port (occupancy and queueing delay may be positive) but can never
    /// drop or retransmit.
    #[test]
    fn prop_qinf_never_drops_or_retransmits(ix in 0usize..4) {
        let regime = LinkRegime::Queued {
            buffer_bytes: u64::MAX,
            discipline: QueueDiscipline::Backpressure,
        };
        let stats = run_with_regime(ix, regime);
        prop_assert_eq!(stats.total_drops(), 0);
        prop_assert_eq!(stats.total_retransmits(), 0);
    }

    /// Loss accounting is a pure function of the scenario: two cold runs
    /// agree on every counter of every chip.
    #[test]
    fn prop_counters_are_stable_across_cold_reruns(
        ix in 0usize..4,
        per_mille in 1u32..400,
    ) {
        let regime = LinkRegime::Lossy {
            drop_per_mille: per_mille,
            nack_cycles: LinkRegime::DEFAULT_NACK_CYCLES,
        };
        let a = run_with_regime(ix, regime);
        let b = run_with_regime(ix, regime);
        prop_assert_eq!(a, b);
    }
}

/// Deterministic spot check: a buffer one message wide under two-way
/// fan-in drops, recovers, and pays exactly one retransmission per
/// drop — bit-identically on a rerun.
#[test]
fn droptail_on_contended_fan_in_drops_and_recovers() {
    let regime = LinkRegime::Queued {
        buffer_bytes: 12_000,
        discipline: QueueDiscipline::DropTail { nack_cycles: 500 },
    };
    let programs = contended_fan_in(10_000);
    let stats = machine_with_regime(3, regime).run(&programs).unwrap();
    assert!(stats.total_drops() > 0, "a 12 kB buffer under 2x10 kB fan-in must drop");
    assert_eq!(stats.total_retransmits(), stats.total_drops());
    let again = machine_with_regime(3, regime).run(&programs).unwrap();
    assert_eq!(stats, again, "drop-tail accounting must be deterministic");
}
