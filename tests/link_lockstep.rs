//! Lockstep suite for the link timing regimes (DESIGN.md §11): the
//! queued regime with an infinite buffer must be **indistinguishable**
//! from the closed-form affine model on every real schedule — makespan
//! and the full compute/DMA/C2C/idle breakdown — across:
//!
//! 1. every valid scenario of the default sweep grid;
//! 2. the deep-model grid (periodic extrapolation stays engaged because
//!    an infinite buffer is contention-free);
//! 3. the multi-request batch grid;
//!
//! plus the behaviors only the packet-level model can express: queueing
//! delay under fan-in contention, head-of-line deadlock on undersized
//! buffers (a typed error, never a hang), deterministic go-back-N loss
//! recovery, and the zero-bandwidth / precision edge cases the regime
//! work flushed out of the affine model.

use std::collections::HashMap;

use mtp::harness::sweep::{ModelPreset, Scenario, SweepEngine, SweepGrid, SweepRow, TopologySpec};
use mtp::link::Topology;
use mtp::model::InferenceMode;
use mtp::sim::{DmaSpec, LinkPortSpec, LinkRegime, QueueDiscipline};
use proptest::prelude::*;

/// Queued regime with an unbounded buffer: senders never park, so the
/// arbitration must reproduce affine timing bit-for-bit.
const QINF: LinkRegime =
    LinkRegime::Queued { buffer_bytes: u64::MAX, discipline: QueueDiscipline::Backpressure };

/// The scenario's identity with the regime axis normalized away, for
/// pairing each queued row with its affine twin.
fn regime_blind_key(s: &Scenario) -> String {
    s.clone().with_link_regime(LinkRegime::Affine).key()
}

/// Runs `grid` with both the affine and the infinite-buffer queued
/// regime and asserts every scenario pair is timing-identical (and that
/// both regimes skip exactly the same invalid grid points).
fn assert_qinf_matches_affine(grid: SweepGrid, name: &str) {
    let grid = grid.with_link_regimes(vec![LinkRegime::Affine, QINF]);
    let results = SweepEngine::new().run(&grid);
    assert!(!results.rows.is_empty(), "{name}: grid produced no rows");

    let mut pairs: HashMap<String, Vec<&SweepRow>> = HashMap::new();
    for row in &results.rows {
        pairs.entry(regime_blind_key(&row.scenario)).or_default().push(row);
    }
    for (key, rows) in &pairs {
        assert_eq!(rows.len(), 2, "{name} {key}: expected an affine and a qinf row");
        let affine = rows.iter().find(|r| r.scenario.link_regime == LinkRegime::Affine).unwrap();
        let qinf = rows.iter().find(|r| r.scenario.link_regime == QINF).unwrap();
        assert_eq!(
            affine.report.stats.makespan, qinf.report.stats.makespan,
            "{name} {key}: qinf makespan diverged from affine"
        );
        assert_eq!(
            affine.report.breakdown(),
            qinf.report.breakdown(),
            "{name} {key}: qinf cycle breakdown diverged from affine"
        );
        // The affine model never accrues queue statistics; an unbounded
        // buffer never drops or retransmits.
        assert_eq!(affine.report.queueing_delay_cycles(), 0, "{name} {key}");
        assert_eq!(affine.report.peak_queue_bytes(), 0, "{name} {key}");
        assert_eq!(qinf.report.drops(), 0, "{name} {key}");
        assert_eq!(qinf.report.retransmits(), 0, "{name} {key}");
    }

    let mut skip_pairs: HashMap<String, usize> = HashMap::new();
    for s in &results.skipped {
        *skip_pairs.entry(regime_blind_key(&s.scenario)).or_default() += 1;
    }
    for (key, n) in &skip_pairs {
        assert_eq!(*n, 2, "{name} {key}: both regimes must skip the same grid points");
    }
}

#[test]
fn default_grid_qinf_lockstep() {
    assert_qinf_matches_affine(SweepGrid::paper_default(), "default");
}

#[test]
fn deep_grid_qinf_lockstep() {
    assert_qinf_matches_affine(SweepGrid::deep_default(), "deep");
}

#[test]
fn batch_grid_qinf_lockstep() {
    assert_qinf_matches_affine(SweepGrid::batch_default(), "batch");
}

/// Flat all-to-one reduction at 8 chips: seven simultaneous sends
/// serialize through the root's ingress port. With an ample buffer the
/// arrival *times* match affine (the affine model already serializes the
/// port), so the makespan is preserved — but only the queued regime
/// *accounts* the serialization as queueing delay and buffer occupancy.
#[test]
fn flat_fan_in_contention_accrues_queueing_delay_without_moving_makespan() {
    let pr = InferenceMode::Prompt;
    let base =
        Scenario::new(ModelPreset::TinyLlama.config(pr), pr, 8).with_topology(TopologySpec::Flat);
    let affine = base.clone().run().unwrap();
    assert_eq!(affine.queueing_delay_cycles(), 0);
    assert_eq!(affine.peak_queue_bytes(), 0);
    // 1 MiB comfortably exceeds fan-in x message size, so no sender ever
    // parks on credit (see `undersized_buffer_deadlocks_head_of_line`).
    let ample =
        LinkRegime::Queued { buffer_bytes: 1 << 20, discipline: QueueDiscipline::Backpressure };
    for regime in [QINF, ample] {
        let queued = base.clone().with_link_regime(regime).run().unwrap();
        assert_eq!(
            queued.stats.makespan,
            affine.stats.makespan,
            "{}: uncontended-buffer queueing must not move the makespan",
            regime.label()
        );
        assert!(queued.queueing_delay_cycles() > 0, "{}", regime.label());
        assert!(queued.peak_queue_bytes() > 0, "{}", regime.label());
        assert_eq!(queued.drops(), 0, "{}", regime.label());
    }
}

/// A buffer smaller than fan-in x message size can deadlock via
/// head-of-line blocking: an out-of-order arrival holds the receiver's
/// buffer while the sender the receiver is actually waiting on is parked
/// on credit. This is faithful credit-protocol behavior (real designs
/// size ingress buffers to the fan-in); the simulator must surface it as
/// a typed error — and the sweep engine as a skipped row — never a hang.
#[test]
fn undersized_buffer_deadlocks_head_of_line() {
    let pr = InferenceMode::Prompt;
    let scenario = Scenario::new(ModelPreset::TinyLlama.config(pr), pr, 4).with_link_regime(
        LinkRegime::Queued { buffer_bytes: 2048, discipline: QueueDiscipline::Backpressure },
    );
    let err = scenario.run().unwrap_err();
    assert!(err.to_string().contains("deadlock"), "got: {err}");

    let results = SweepEngine::new().run_scenarios(std::slice::from_ref(&scenario));
    assert!(results.rows.is_empty());
    assert_eq!(results.skipped.len(), 1);
    assert!(results.skipped[0].reason.contains("deadlock"), "got: {}", results.skipped[0].reason);
}

/// Go-back-N loss recovery on a real schedule: strictly slower than
/// affine, with non-zero drop/retransmit counters — and bit-identical
/// across two cold engines (the drop decision is a pure hash of
/// (message, packet, attempt), not an RNG stream).
#[test]
fn lossy_regime_is_deterministic_and_strictly_slower() {
    let pr = InferenceMode::Prompt;
    let base = Scenario::new(ModelPreset::TinyLlama.config(pr), pr, 4);
    let affine = base.clone().run().unwrap();
    assert_eq!(affine.drops(), 0);
    assert_eq!(affine.retransmits(), 0);

    let lossy = base.with_link_regime(LinkRegime::Lossy { drop_per_mille: 200, nack_cycles: 500 });
    let first = lossy.clone().run().unwrap();
    let second = SweepEngine::serial().run_one(&lossy).unwrap();
    assert_eq!(first.stats, second.stats, "lossy replay must be byte-deterministic");
    assert!(
        first.stats.makespan > affine.stats.makespan,
        "20% packet loss must cost cycles: {} vs {}",
        first.stats.makespan,
        affine.stats.makespan
    );
    assert!(first.drops() > 0);
    assert!(first.retransmits() > 0);
}

/// A zero-bandwidth axis value is a typed validation error, reported as
/// a skip reason for every grid point it touches — not a divide-by-zero
/// or an unbounded transfer time (the bug this PR fixes).
#[test]
fn zero_bandwidth_grid_points_skip_with_a_typed_reason() {
    let pr = InferenceMode::Prompt;
    let grid = SweepGrid::single(ModelPreset::TinyLlama.config(pr), pr, vec![2, 4])
        .with_link_bw_pcts(vec![0]);
    let results = SweepEngine::new().run(&grid);
    assert!(results.rows.is_empty());
    assert_eq!(results.skipped.len(), 2);
    for s in &results.skipped {
        assert!(s.reason.contains("bandwidth"), "got: {}", s.reason);
    }
}

/// The affine precision fix, pinned: above 2^53 bytes the historical
/// `as f64 ... ceil()` round-trip truncates, while the `div_ceil` path
/// taken for integral bandwidths stays exact.
#[test]
fn integral_bandwidth_transfer_cycles_are_exact_above_float_precision() {
    let bytes = (1u64 << 53) + 1; // rounds to 2^53 as an f64
    let port = LinkPortSpec { bytes_per_cycle: 1.0, ..LinkPortSpec::mipi() };
    assert_eq!(port.payload_cycles(bytes), bytes);
    assert_eq!(port.transfer_cycles(bytes), 500 + bytes);
    let dma = DmaSpec::new(2.0, 16);
    assert_eq!(dma.transfer_cycles(bytes), 16 + (1u64 << 52) + 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// In the f64-representable range the exact `div_ceil` path must
    /// agree with the historical float formula for every integral
    /// bandwidth, on both the link port and the DMA engines (the fix
    /// changes behavior only where the float path was already wrong).
    #[test]
    fn prop_integral_bandwidth_matches_float_formula_in_representable_range(
        bytes in 0u64..(1u64 << 50),
        bw in prop::sample::select(vec![1u64, 2, 3, 7, 8, 64, 1000]),
        setup in prop::sample::select(vec![0u64, 16, 500]),
    ) {
        let float_payload = (bytes as f64 / bw as f64).ceil() as u64;
        let port = LinkPortSpec { bytes_per_cycle: bw as f64, ..LinkPortSpec::mipi() };
        prop_assert_eq!(port.payload_cycles(bytes), float_payload);
        let expect_transfer =
            if bytes == 0 { 0 } else { port.latency_cycles + float_payload };
        prop_assert_eq!(port.transfer_cycles(bytes), expect_transfer);
        let dma = DmaSpec::new(bw as f64, setup);
        let expect_dma = if bytes == 0 { 0 } else { setup + float_payload };
        prop_assert_eq!(dma.transfer_cycles(bytes), expect_dma);
    }

    /// Every non-root chip sends exactly once per reduction, at any
    /// group size — the structural invariant behind the "n-1 messages
    /// per reduce" claim (paper §III).
    #[test]
    fn prop_every_non_root_chip_sends_exactly_once_per_reduction(
        n_chips in 1usize..200,
        group_size in 2usize..9,
    ) {
        let t = Topology::hierarchical(n_chips, group_size).unwrap();
        let mut sends = vec![0usize; n_chips];
        for s in t.reduce_steps() {
            sends[s.from] += 1;
            prop_assert!(s.to < n_chips);
            prop_assert!(s.from != s.to);
        }
        prop_assert_eq!(sends[t.root()], 0, "the root never sends during reduce");
        for (chip, &n) in sends.iter().enumerate().skip(1) {
            prop_assert_eq!(n, 1, "chip {} must send exactly once", chip);
        }
    }
}
