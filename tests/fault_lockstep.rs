//! Lockstep and invariant suite for the fault subsystem (DESIGN.md §14):
//!
//! 1. **No-fault purity** — adding the fault axis with a `none` plan
//!    changes nothing: the `none` rows of a mixed grid serialize
//!    byte-identically to the fault-free grid's rows, and the fault
//!    axis never splits the compiled-schedule cache.
//! 2. **Replayability** — faulted sweeps and faulted serving runs are
//!    byte-deterministic across cold engines, and the serial and
//!    parallel sweep engines agree under faults.
//! 3. **Failover semantics** — a fail-stop under `abort` surfaces as a
//!    typed skip; `restart` and `spare` complete the pass with a
//!    makespan no better than the fault-free run.
//! 4. **Counter invariants** — fault counters land in the right
//!    buckets per regime × fault combination, and availability is
//!    monotone non-increasing in the request failure rate.

use mtp::core::{
    BatchPolicy, Billing, DistributedSystem, FailPolicy, FaultProfile, RequestOutcome,
};
use mtp::harness::serve::{ServeEngine, ServeGrid};
use mtp::harness::sweep::{Scenario, SweepEngine, SweepGrid};
use mtp::model::{ArrivalProcess, InferenceMode, ServeWorkload, TransformerConfig};
use mtp::sim::{FaultPlan, LinkRegime};

fn base_grid() -> SweepGrid {
    SweepGrid::new(
        vec![(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive)],
        vec![2, 4],
    )
}

fn transient_plan() -> FaultPlan {
    FaultPlan::parse("stall:0:1000:5000+slow:1:0:50000:150").unwrap()
}

/// The `none` rows of a grid that carries a fault axis are
/// byte-identical to the rows of the same grid without the axis, and
/// the compiled-schedule cache is shared across fault plans (the fault
/// axis never splits a `ScheduleKey`).
#[test]
fn none_plan_rows_are_byte_identical_to_fault_free_grid() {
    let plain_engine = SweepEngine::new();
    let plain = plain_engine.run(&base_grid());
    let faulted_engine = SweepEngine::new();
    let mixed = faulted_engine
        .run(&base_grid().with_fault_plans(vec![FaultPlan::none(), transient_plan()]));
    assert_eq!(mixed.rows.len(), 2 * plain.rows.len());
    let none_lines: Vec<String> = mixed
        .rows
        .iter()
        .filter(|r| r.scenario.faults.is_empty())
        .map(|r| r.to_csv_line())
        .collect();
    let plain_lines: Vec<String> = plain.rows.iter().map(|r| r.to_csv_line()).collect();
    assert_eq!(none_lines, plain_lines, "a none plan must not perturb fault-free rows");
    assert_eq!(
        faulted_engine.cached_schedules_len(),
        plain_engine.cached_schedules_len(),
        "the fault axis must reuse compiled schedules, not split them"
    );
}

/// Two cold engines produce byte-identical output for a faulted grid,
/// and the serial engine agrees with the parallel one.
#[test]
fn faulted_sweep_is_deterministic_across_engines() {
    let grid = base_grid()
        .with_fault_plans(vec![
            FaultPlan::none(),
            transient_plan(),
            FaultPlan::seeded(7, 3, 2_000_000),
        ])
        .with_fail_policy(FailPolicy::Restart);
    let a = SweepEngine::new().run(&grid);
    let b = SweepEngine::new().run(&grid);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
    let serial = SweepEngine::serial().run(&grid);
    let parallel = SweepEngine::with_threads(8).run(&grid);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
}

/// A fail-stop under the default `abort` policy is a typed skip with
/// the chip and cycle in the reason — not a panic, not a silent row.
#[test]
fn failstop_under_abort_is_a_typed_skip() {
    let grid = base_grid().with_fault_plans(vec![FaultPlan::parse("failstop:0:1000").unwrap()]);
    let out = SweepEngine::new().run(&grid);
    assert!(out.rows.is_empty());
    assert_eq!(out.skipped.len(), 2);
    for s in &out.skipped {
        assert!(
            s.reason.contains("fail-stopped"),
            "skip reason should name the fail-stop, got `{}`",
            s.reason
        );
    }
}

/// `restart` and `spare` survive a mid-run fail-stop and pay for it:
/// the degraded makespan is strictly worse than the fault-free one.
#[test]
fn restart_and_spare_complete_with_degraded_makespan() {
    let scenario =
        Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 4);
    let plain = scenario.run().unwrap();
    let at = plain.stats.makespan / 2;
    let plan = FaultPlan::parse(&format!("failstop:0:{at}")).unwrap();
    for policy in [FailPolicy::Restart, FailPolicy::SpareChip] {
        let degraded = scenario
            .clone()
            .with_faults(plan.clone())
            .with_fail_policy(policy)
            .run()
            .unwrap_or_else(|e| panic!("{policy:?} should complete, got {e}"));
        assert!(
            degraded.stats.makespan > plain.stats.makespan,
            "{policy:?}: faulted makespan {} should exceed fault-free {}",
            degraded.stats.makespan,
            plain.stats.makespan
        );
        assert!(degraded.stats.total_downtime_cycles() > 0);
    }
}

/// Fault counters land in the right buckets: a slow window under a
/// lossy regime shows both loss drops and slowdown cycles; a stall
/// under the contention-free affine regime shows stall cycles and no
/// drops; transient-only plans never report downtime.
#[test]
fn counters_match_regime_and_fault_kind() {
    let scenario =
        Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 4);
    let lossy_slow = scenario
        .clone()
        .with_link_regime(LinkRegime::parse("lossy:200").unwrap())
        .with_faults(FaultPlan::parse("slow:1:0:2000000:150").unwrap())
        .run()
        .unwrap();
    assert!(lossy_slow.stats.total_drops() > 0, "lossy regime should drop packets");
    assert!(lossy_slow.stats.total_fault_slow_cycles() > 0, "slow window should surcharge");
    assert_eq!(lossy_slow.stats.total_fault_stall_cycles(), 0);

    let affine_stall =
        scenario.clone().with_faults(FaultPlan::parse("stall:0:1000:5000").unwrap()).run().unwrap();
    assert!(affine_stall.stats.total_fault_stall_cycles() > 0);
    assert_eq!(affine_stall.stats.total_drops(), 0, "affine links never drop");

    let transient = scenario.with_faults(transient_plan()).run().unwrap();
    assert_eq!(transient.stats.total_downtime_cycles(), 0, "only fail-stops produce downtime");
}

/// Availability is monotone non-increasing in the per-attempt failure
/// rate when the retry budget is zero, and exactly 1.0 fault-free.
#[test]
fn serve_availability_is_monotone_in_failure_rate() {
    let sys = DistributedSystem::paper_default(TransformerConfig::tiny_llama_42m(), 4).unwrap();
    let workload =
        ServeWorkload::open_loop(&ArrivalProcess::Poisson { rate_per_mcycle: 2.0 }, 16, 16, 2, 42)
            .unwrap();
    let mut last = f64::INFINITY;
    for rate in [0u32, 50, 200, 500, 1000] {
        let profile = FaultProfile { fail_per_mille: rate, max_retries: 0, ..FaultProfile::none() };
        let report = sys
            .simulate_serve_faulted(
                &workload,
                BatchPolicy::Continuous { max_slots: 4 },
                Billing::FullContext,
                &profile,
                42,
            )
            .unwrap();
        let avail = report.availability().expect("non-empty run");
        if rate == 0 {
            assert!((avail - 1.0).abs() < f64::EPSILON);
        }
        assert!(
            avail <= last,
            "availability should not rise with the failure rate ({avail} after {last})"
        );
        assert_eq!(report.failed as usize + report.completed(), report.requests.len());
        last = avail;
    }
}

/// Faulted serving grids are deterministic across cold engines, their
/// `none` rows match the fault-free grid byte for byte, and degraded
/// outcomes reconcile with the report counters.
#[test]
fn faulted_serve_grid_is_deterministic_and_reconciles() {
    let grid = ServeGrid::paper_default()
        .with_chip_counts(vec![4])
        .with_arrivals(vec![ArrivalProcess::Poisson { rate_per_mcycle: 2.0 }])
        .with_policies(vec![BatchPolicy::Continuous { max_slots: 4 }])
        .with_requests(12, 16, 2);
    let faulted = grid
        .clone()
        .with_faults(vec![FaultProfile::none(), FaultProfile::parse("fail:300:1:0:4").unwrap()]);
    let a = ServeEngine::new().run(&faulted);
    let b = ServeEngine::new().run(&faulted);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());

    let plain = ServeEngine::new().run(&grid);
    assert_eq!(
        a.rows[0].to_csv_line(),
        plain.rows[0].to_csv_line(),
        "the none profile must take the fault-free path byte for byte"
    );

    let degraded = &a.rows[1].report;
    let by_outcome =
        |o: RequestOutcome| degraded.requests.iter().filter(|r| r.outcome == o).count() as u64;
    assert_eq!(by_outcome(RequestOutcome::Failed), degraded.failed);
    assert_eq!(by_outcome(RequestOutcome::Shed), degraded.sheds);
    assert_eq!(by_outcome(RequestOutcome::TimedOut), degraded.timeouts);
    assert!(
        degraded.availability().expect("non-empty run") < 1.0,
        "a 30% per-attempt failure rate must bite"
    );
    assert!(degraded.retries > 0, "retry budget 1 should be exercised");
}
