//! Property-based tests of the event-driven simulator: any well-formed
//! program set executes deterministically, without deadlock, with
//! internally consistent accounting — independent of program content.

use mtp::kernels::Kernel;
use mtp::sim::{ChipSpec, Instr, Machine, MemPath, Program};
use proptest::prelude::*;

/// Generates a well-formed multi-chip program set: every chip gets random
/// local work, plus a ring of sends so the chips genuinely interact
/// (chip i sends to chip (i+1) % n and receives from (i-1+n) % n).
fn program_set(n_chips: usize, seed: u64) -> Vec<Program> {
    let mut programs = Vec::with_capacity(n_chips);
    for c in 0..n_chips {
        let mut p = Program::new();
        let mut state = seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..(next() % 6 + 1) {
            match next() % 4 {
                0 => p.push(Instr::compute(Kernel::gemv(
                    (next() % 256 + 1) as usize,
                    (next() % 256 + 1) as usize,
                ))),
                1 => p.push(Instr::Dma { path: MemPath::L2ToL1, bytes: next() % 100_000 }),
                2 => p.push(Instr::Dma { path: MemPath::L3ToL2, bytes: next() % 100_000 }),
                _ => p.push(Instr::compute(Kernel::Softmax {
                    rows: (next() % 8 + 1) as usize,
                    cols: (next() % 128 + 1) as usize,
                })),
            }
        }
        if n_chips > 1 {
            // Ring exchange: deterministic message ids per edge.
            p.push(Instr::send((c + 1) % n_chips, c as u64, next() % 10_000 + 1));
            p.push(Instr::recv((c + n_chips - 1) % n_chips, ((c + n_chips - 1) % n_chips) as u64));
        }
        programs.push(p);
    }
    programs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_well_formed_programs_never_deadlock(
        n_chips in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let machine = Machine::homogeneous(ChipSpec::siracusa(), n_chips);
        let programs = program_set(n_chips, seed);
        let stats = machine.run(&programs).expect("well-formed programs must complete");
        prop_assert_eq!(stats.per_chip.len(), n_chips);
    }

    #[test]
    fn prop_execution_is_deterministic(
        n_chips in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let machine = Machine::homogeneous(ChipSpec::siracusa(), n_chips);
        let programs = program_set(n_chips, seed);
        let a = machine.run(&programs).unwrap();
        let b = machine.run(&programs).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn prop_accounting_is_consistent(
        n_chips in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let machine = Machine::homogeneous(ChipSpec::siracusa(), n_chips);
        let programs = program_set(n_chips, seed);
        let stats = machine.run(&programs).unwrap();
        for (c, chip) in stats.per_chip.iter().enumerate() {
            // Exposed categories never exceed the chip's finish time.
            let busy = chip.compute_cycles
                + chip.dma_l3_l2_exposed_cycles
                + chip.dma_l2_l1_exposed_cycles
                + chip.c2c_exposed_cycles;
            prop_assert!(busy <= chip.finish_cycles, "chip {c}: busy {busy} > finish");
            // Sent bytes reconcile with the program.
            prop_assert_eq!(chip.c2c_bytes_sent, programs[c].sent_bytes());
        }
        prop_assert_eq!(stats.makespan, stats.per_chip.iter().map(|c| c.finish_cycles).max().unwrap());
    }

    #[test]
    fn prop_traced_run_is_consistent(
        n_chips in 1usize..6,
        seed in 0u64..5_000,
    ) {
        let machine = Machine::homogeneous(ChipSpec::siracusa(), n_chips);
        let programs = program_set(n_chips, seed);
        let plain = machine.run(&programs).unwrap();
        let (traced, trace) = machine.run_traced(&programs).unwrap();
        prop_assert_eq!(&plain, &traced, "tracing must not perturb timing");
        prop_assert!(trace.find_overlap().is_none());
        for e in trace.events() {
            prop_assert!(e.end <= traced.per_chip[e.chip].finish_cycles);
        }
    }

    #[test]
    fn prop_slower_links_never_reduce_makespan(
        seed in 0u64..5_000,
    ) {
        let n = 4;
        let programs = program_set(n, seed);
        let fast = Machine::homogeneous(ChipSpec::siracusa(), n).run(&programs).unwrap();
        let mut slow_chip = ChipSpec::siracusa();
        slow_chip.link.bytes_per_cycle = 0.25;
        slow_chip.link.latency_cycles *= 4;
        let slow = Machine::homogeneous(slow_chip, n).run(&programs).unwrap();
        prop_assert!(slow.makespan >= fast.makespan);
    }
}

#[test]
fn heterogeneous_machines_are_supported() {
    // A fast chip and a slow chip cooperating: the slow chip's compute
    // dominates the makespan.
    let fast = ChipSpec::siracusa();
    let mut slow = ChipSpec::siracusa();
    slow.cost_model = {
        let mut params = *slow.cost_model.params();
        params.cores = 1;
        mtp::kernels::ClusterCostModel::new(params)
    };
    let machine = Machine::new(vec![fast, slow]);
    let work = Instr::compute(Kernel::gemm(64, 256, 256));
    let programs = vec![Program::from_instrs([work]), Program::from_instrs([work])];
    let stats = machine.run(&programs).unwrap();
    assert!(
        stats.per_chip[1].finish_cycles > 4 * stats.per_chip[0].finish_cycles,
        "1-core chip should be much slower than the 8-core chip"
    );
    assert_eq!(stats.critical_chip(), 1);
}

#[test]
fn empty_machine_runs_empty_program_set() {
    let machine = Machine::new(vec![]);
    let stats = machine.run(&[]).unwrap();
    assert_eq!(stats.makespan, 0);
}
