//! Lockstep suite for the hot-path rewrite (see DESIGN.md §8): the
//! optimized implementations must be *indistinguishable* from their
//! retained references.
//!
//! 1. **Kernel bit-identity** — the blocked `matmul`/`matmul_t` kernels
//!    and their `_into` scratch variants produce bit-identical results to
//!    the naive triple loops retained in `mtp_tensor::naive`, across
//!    arbitrary shapes (including unroll-tail shapes and exact zeros,
//!    which the old kernel special-cased).
//! 2. **Attention bit-identity** — the strided zero-alloc attention path
//!    equals the split/concat formulation it replaced, bit for bit.
//! 3. **Sink equivalence** — aggregate-only runs ([`mtp::sim::MakespanOnly`])
//!    report exactly the same makespan, per-chip breakdowns, and byte
//!    counters as full-trace runs, on arbitrary well-formed program sets.

use mtp::kernels::Kernel;
use mtp::model::reference::{self, AttnMask};
use mtp::sim::{ChipSpec, Instr, Machine, MakespanOnly, MemPath, Program};
use mtp::tensor::{naive, Shape, Tensor};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix with exact zeros sprinkled in
/// (about 1 in 7 entries), so the lockstep also covers the inputs the
/// old kernel's `a == 0.0` skip special-cased.
fn tensor_with_zeros(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_fn(Shape::mat(rows, cols), |(r, c)| {
        let mut z =
            seed.wrapping_add(r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(c as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        if z.is_multiple_of(7) {
            0.0
        } else {
            ((z >> 40) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        }
    })
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape(), "{}: shape mismatch", what);
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: bit mismatch at {} ({} vs {})",
            what,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// Ring-exchange program set (same generator family as
/// `simulator_properties.rs`), exercising compute, both DMA engines,
/// async DMA with end-of-program drains, syncs, and sends/recvs.
fn program_set(n_chips: usize, seed: u64) -> Vec<Program> {
    let mut programs = Vec::with_capacity(n_chips);
    for c in 0..n_chips {
        let mut p = Program::new();
        let mut state = seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..(next() % 7 + 1) {
            match next() % 5 {
                0 => p.push(Instr::compute(Kernel::gemv(
                    (next() % 256 + 1) as usize,
                    (next() % 256 + 1) as usize,
                ))),
                1 => p.push(Instr::Dma { path: MemPath::L2ToL1, bytes: next() % 100_000 }),
                2 => p.push(Instr::Dma { path: MemPath::L3ToL2, bytes: next() % 100_000 }),
                3 => {
                    // Async transfer, sometimes left in flight at program
                    // end (the deterministic-drain path).
                    let tag = mtp::sim::DmaTag(i as u32);
                    let path = if next() % 2 == 0 { MemPath::L3ToL2 } else { MemPath::L2ToL1 };
                    p.push(Instr::DmaAsync { path, bytes: next() % 500_000 + 1, tag });
                    if next() % 2 == 0 {
                        p.push(Instr::DmaWait(tag));
                    }
                }
                _ => p.push(Instr::Sync((next() % 3) as u32)),
            }
        }
        if n_chips > 1 {
            p.push(Instr::send((c + 1) % n_chips, c as u64, next() % 10_000 + 1));
            p.push(Instr::recv((c + n_chips - 1) % n_chips, ((c + n_chips - 1) % n_chips) as u64));
        }
        programs.push(p);
    }
    programs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked matmul == naive matmul, bit for bit, arbitrary shapes.
    #[test]
    fn prop_matmul_lockstep(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..10_000,
    ) {
        let a = tensor_with_zeros(m, k, seed);
        let b = tensor_with_zeros(k, n, seed.wrapping_add(1));
        let golden = naive::matmul(&a, &b).unwrap();
        let blocked = a.try_matmul(&b).unwrap();
        assert_bits_eq(&blocked, &golden, "try_matmul")?;
        // The scratch variant must agree even when the buffer starts with
        // stale shape and contents.
        let mut out = tensor_with_zeros(3, 5, seed.wrapping_add(2));
        a.matmul_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &golden, "matmul_into")?;
    }

    /// Blocked matmul_t == naive matmul_t, bit for bit, arbitrary shapes.
    #[test]
    fn prop_matmul_t_lockstep(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..10_000,
    ) {
        let a = tensor_with_zeros(m, k, seed);
        let bt = tensor_with_zeros(n, k, seed.wrapping_add(3));
        let golden = naive::matmul_t(&a, &bt).unwrap();
        let blocked = a.try_matmul_t(&bt).unwrap();
        assert_bits_eq(&blocked, &golden, "try_matmul_t")?;
        let mut out = tensor_with_zeros(2, 9, seed.wrapping_add(4));
        a.matmul_t_into(&bt, &mut out).unwrap();
        assert_bits_eq(&out, &golden, "matmul_t_into")?;
    }

    /// The strided zero-alloc attention equals the split/concat
    /// formulation it replaced, bit for bit (including grouped-query
    /// configurations and causal masks).
    #[test]
    fn prop_attention_lockstep(
        sq in 1usize..9,
        skv_extra in 0usize..8,
        head_dim in prop::sample::select(vec![2usize, 4, 8]),
        n_kv in prop::sample::select(vec![1usize, 2, 4]),
        group in prop::sample::select(vec![1usize, 2]),
        causal in prop::sample::select(vec![false, true]),
        seed in 0u64..10_000,
    ) {
        let n_heads = n_kv * group;
        let skv = sq + skv_extra;
        let q = tensor_with_zeros(sq, n_heads * head_dim, seed);
        let k = tensor_with_zeros(skv, n_kv * head_dim, seed.wrapping_add(5));
        let v = tensor_with_zeros(skv, n_kv * head_dim, seed.wrapping_add(6));
        let mask = if causal { AttnMask::Causal { q_offset: skv - sq } } else { AttnMask::None };
        let fast = reference::attention_heads(&q, &k, &v, head_dim, mask).unwrap();
        // Reference formulation: per-head split, dense kernels, concat.
        let qs = q.split_cols(n_heads).unwrap();
        let ks = k.split_cols(n_kv).unwrap();
        let vs = v.split_cols(n_kv).unwrap();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut outs = Vec::new();
        for (h, qh) in qs.iter().enumerate() {
            let mut scores = qh.try_matmul_t(&ks[h / group]).unwrap().scaled(scale);
            if let AttnMask::Causal { q_offset } = mask {
                for i in 0..sq {
                    for j in (q_offset + i + 1)..skv {
                        scores.set(i, j, f32::NEG_INFINITY);
                    }
                }
            }
            let probs = mtp::kernels::softmax_rows(&scores);
            outs.push(probs.try_matmul(&vs[h / group]).unwrap());
        }
        let golden = Tensor::concat_cols(&outs).unwrap();
        assert_bits_eq(&fast, &golden, "attention_heads")?;
    }

    /// MakespanOnly runs report identical makespan, per-chip breakdowns,
    /// and byte counters to full-trace runs.
    #[test]
    fn prop_makespan_only_matches_full_trace(
        n_chips in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let machine = Machine::homogeneous(ChipSpec::siracusa(), n_chips);
        let programs = program_set(n_chips, seed);
        let plain = machine.run(&programs).unwrap();
        let (traced, _) = machine.run_traced(&programs).unwrap();
        prop_assert_eq!(&plain, &traced, "sink choice must not change aggregates");
        let (with_sink, _) = machine.run_with_sink(&programs, MakespanOnly).unwrap();
        prop_assert_eq!(&plain, &with_sink);
    }
}
