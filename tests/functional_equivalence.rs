//! Integration tests: the distributed functional execution matches the
//! golden single-chip reference, across model families, chip counts, and
//! inference modes — including property-based tests over random
//! configurations.
//!
//! This is the correctness argument for the paper's partitioning scheme.

use mtp::core::functional::FunctionalSystem;
use mtp::model::{
    reference, AttentionKind, Decoder, Encoder, ModelWeights, NormKind, TransformerConfig,
};
use mtp::tensor::Tensor;
use proptest::prelude::*;

fn small(
    e: usize,
    f: usize,
    h: usize,
    layers: usize,
    attention: AttentionKind,
) -> TransformerConfig {
    let mut cfg = TransformerConfig::tiny_llama_42m();
    cfg.embed_dim = e;
    cfg.ffn_dim = f;
    cfg.n_heads = h;
    cfg.n_kv_heads = h;
    cfg.n_layers = layers;
    cfg.seq_len = 16;
    cfg.attention = attention;
    cfg.norm = match attention {
        AttentionKind::Bidirectional => NormKind::LayerNorm,
        AttentionKind::CausalRope => NormKind::RmsNorm,
    };
    cfg
}

#[test]
fn decoder_prompt_pass_matches_reference_across_chip_counts() {
    let cfg = small(64, 96, 8, 3, AttentionKind::CausalRope);
    let weights = ModelWeights::seeded(&cfg, 42);
    let x = reference::synthetic_input(8, cfg.embed_dim, 3);
    let golden = Decoder::new(cfg.clone(), weights.clone()).prompt(&x).unwrap();
    for n in [1usize, 2, 4, 8] {
        let mut sys = FunctionalSystem::new(cfg.clone(), &weights, n).unwrap();
        let out = sys.prompt(&x).unwrap();
        let diff = out.max_abs_diff(&golden).unwrap();
        assert!(diff < 1e-3, "n={n} diff={diff}");
    }
}

#[test]
fn decoder_autoregressive_steps_match_reference() {
    let cfg = small(64, 96, 4, 2, AttentionKind::CausalRope);
    let weights = ModelWeights::seeded(&cfg, 7);
    let mut golden = Decoder::new(cfg.clone(), weights.clone());
    let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 4).unwrap();
    for step in 0..8u64 {
        let x = reference::synthetic_input(1, cfg.embed_dim, 1000 + step);
        let g = golden.step(&x).unwrap();
        let d = sys.step(&x).unwrap();
        let diff = d.max_abs_diff(&g).unwrap();
        assert!(diff < 1e-3, "step {step} diff={diff}");
    }
}

#[test]
fn encoder_matches_reference_across_chip_counts() {
    let cfg = small(48, 64, 4, 3, AttentionKind::Bidirectional);
    let weights = ModelWeights::seeded(&cfg, 11);
    let x = reference::synthetic_input(12, cfg.embed_dim, 9);
    let golden = Encoder::new(cfg.clone(), weights.clone()).forward(&x).unwrap();
    for n in [1usize, 2, 4] {
        let mut sys = FunctionalSystem::new(cfg.clone(), &weights, n).unwrap();
        let out = sys.prompt(&x).unwrap();
        assert!(out.approx_eq(&golden, 1e-3).unwrap(), "n={n}");
    }
}

#[test]
fn full_size_tinyllama_block_is_equivalent_on_8_chips() {
    // One full-size (E=512, F=2048) block — the actual paper workload.
    let mut cfg = TransformerConfig::tiny_llama_42m();
    cfg.n_layers = 1;
    let weights = ModelWeights::seeded(&cfg, 1);
    let x = reference::synthetic_input(1, cfg.embed_dim, 2);
    let golden = reference::block_forward(&x, weights.block(0), &cfg, None).unwrap();
    let mut sys = FunctionalSystem::new(cfg, &weights, 8).unwrap();
    let out = sys.block_forward(&x, 0, false).unwrap();
    let diff = out.max_abs_diff(&golden).unwrap();
    assert!(diff < 2e-2, "full-size diff={diff}");
}

#[test]
fn grouped_query_attention_matches_reference() {
    // GQA extension: 8 query heads sharing 4 (then 2) K/V heads. The
    // distributed execution must still match the golden model for every
    // chip count dividing the K/V head count.
    for kv_heads in [4usize, 2] {
        let mut cfg = small(64, 96, 8, 2, AttentionKind::CausalRope);
        cfg.n_kv_heads = kv_heads;
        let weights = ModelWeights::seeded(&cfg, 77);
        let x = reference::synthetic_input(6, cfg.embed_dim, 13);
        let golden = Decoder::new(cfg.clone(), weights.clone()).prompt(&x).unwrap();
        for n in [1usize, 2, kv_heads] {
            let mut sys = FunctionalSystem::new(cfg.clone(), &weights, n).unwrap();
            let out = sys.prompt(&x).unwrap();
            let diff = out.max_abs_diff(&golden).unwrap();
            assert!(diff < 1e-3, "kv={kv_heads} n={n} diff={diff}");
        }
    }
}

#[test]
fn gqa_cached_steps_match_reference() {
    let mut cfg = small(64, 64, 8, 2, AttentionKind::CausalRope);
    cfg.n_kv_heads = 2;
    let weights = ModelWeights::seeded(&cfg, 88);
    let mut golden = Decoder::new(cfg.clone(), weights.clone());
    let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 2).unwrap();
    for step in 0..6u64 {
        let x = reference::synthetic_input(1, cfg.embed_dim, 500 + step);
        let g = golden.step(&x).unwrap();
        let d = sys.step(&x).unwrap();
        let diff = d.max_abs_diff(&g).unwrap();
        assert!(diff < 1e-3, "gqa step {step} diff={diff}");
    }
}

#[test]
fn gqa_rejects_chip_counts_exceeding_kv_heads() {
    let mut cfg = small(64, 64, 8, 1, AttentionKind::CausalRope);
    cfg.n_kv_heads = 2;
    let weights = ModelWeights::seeded(&cfg, 1);
    // 4 chips cannot share 2 K/V heads without replication.
    assert!(FunctionalSystem::new(cfg, &weights, 4).is_err());
}

#[test]
fn mixed_step_then_prompt_usage() {
    // Interleaving modes on the same system must stay consistent with a
    // fresh golden model driven the same way.
    let cfg = small(32, 32, 4, 2, AttentionKind::CausalRope);
    let weights = ModelWeights::seeded(&cfg, 5);
    let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 2).unwrap();
    let x1 = reference::synthetic_input(1, cfg.embed_dim, 1);
    sys.step(&x1).unwrap();
    sys.reset();
    let xp = reference::synthetic_input(4, cfg.embed_dim, 2);
    let out = sys.prompt(&xp).unwrap();
    let golden = Decoder::new(cfg, weights).prompt(&xp).unwrap();
    assert!(out.approx_eq(&golden, 1e-3).unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random (E, heads, F, chips, S) with valid divisibility, the
    /// distributed block output equals the golden reference.
    #[test]
    fn prop_distributed_block_matches_reference(
        heads_pow in 1usize..=3,      // 2, 4, 8 heads
        chips_pow in 0usize..=3,      // 1, 2, 4, 8 chips
        head_dim in prop::sample::select(vec![4usize, 8, 16]),
        f_mult in 1usize..=3,
        s in 1usize..=8,
        seed in 0u64..1000,
    ) {
        let heads = 1 << heads_pow;
        let chips = 1 << chips_pow;
        prop_assume!(chips <= heads);
        let e = heads * head_dim;
        let f = e * f_mult;
        let cfg = small(e, f, heads, 1, AttentionKind::CausalRope);
        let weights = ModelWeights::seeded(&cfg, seed);
        let x = reference::synthetic_input(s, e, seed ^ 0xabc);
        let golden = reference::block_forward(&x, weights.block(0), &cfg, None).unwrap();
        let mut sys = FunctionalSystem::new(cfg, &weights, chips).unwrap();
        let out = sys.block_forward(&x, 0, false).unwrap();
        let diff = out.max_abs_diff(&golden).unwrap();
        prop_assert!(diff < 5e-3, "diff={diff}");
    }

    /// Splitting and re-concatenating an input through per-chip QKV slices
    /// reconstructs the full projection (the slicing identity).
    #[test]
    fn prop_qkv_slices_reconstruct_projection(
        cols_pow in 2usize..=5,
        parts_pow in 0usize..=3,
        seed in 0u64..500,
    ) {
        let cols = 1 << cols_pow;
        let parts = 1 << parts_pow;
        prop_assume!(parts <= cols);
        let x = reference::synthetic_input(3, 16, seed);
        let w = reference::synthetic_input(16, cols, seed + 1);
        let full = x.try_matmul(&w).unwrap();
        let slices = w.split_cols(parts).unwrap();
        let partials: Vec<Tensor> =
            slices.iter().map(|s| x.try_matmul(s).unwrap()).collect();
        let glued = Tensor::concat_cols(&partials).unwrap();
        prop_assert!(full.approx_eq(&glued, 1e-4).unwrap());
    }
}

#[test]
fn end_to_end_generation_matches_token_for_token() {
    // The strongest equivalence statement: greedy decoding through the
    // 4-chip distributed system emits the exact same token sequence as
    // the golden single-chip decoder.
    let cfg = small(32, 48, 4, 2, AttentionKind::CausalRope);
    let weights = ModelWeights::seeded(&cfg, 61);
    let emb = mtp::model::Embedding::seeded(&cfg, 64, 9);
    let prompt = [3u32, 14, 15, 9];

    let mut golden = Decoder::new(cfg.clone(), weights.clone());
    let golden_tokens = mtp::model::generate_greedy(&emb, &prompt, 10, |x| golden.step(x)).unwrap();

    let mut dist = FunctionalSystem::new(cfg, &weights, 4).unwrap();
    let dist_tokens = mtp::model::generate_greedy(&emb, &prompt, 10, |x| dist.step(x)).unwrap();

    assert_eq!(golden_tokens, dist_tokens, "token streams must be identical");
}
