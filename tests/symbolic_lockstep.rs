//! Exact-equality lockstep suite for the symbolic makespan model
//! (see DESIGN.md §15): [`mtp::sim::SymbolicMakespan::eval`] must be
//! **indistinguishable** — makespan, every per-chip counter, the
//! sync-phase count, all exact `u64` equality — from both
//! [`mtp::sim::Machine::run_periodic`] and a full
//! [`mtp::sim::Machine::run`] of the concatenated programs, across:
//!
//! 1. every valid scenario of the default sweep grid;
//! 2. the deep grid (96+ blocks) and the batch grid (uniform batches as
//!    extra blocks);
//! 3. randomized model configurations via proptest;
//! 4. the closed form itself: `makespan(n) = startup + reps * delta`
//!    must equal the evaluated stats' makespan at every depth.
//!
//! Scenarios whose fixed point is not provable (the symbolic model
//! returns `None`) are skipped here — the periodic lockstep suite
//! already covers their fallback path — but the default grid must prove
//! a fixed point for most of its scenarios, which the tests assert.

use mtp::core::schedule::Scheduler;
use mtp::harness::sweep::SweepGrid;
use mtp::model::{InferenceMode, TransformerConfig};
use mtp::sim::{ChipSpec, Instr, Machine, MsgId, Program, SymbolicMakespan, SymbolicPlane};
use proptest::prelude::*;

/// Concatenates a template `n_blocks` times with fresh ids per block —
/// the contract `run_periodic` (and therefore the symbolic model) is
/// defined against, mirrored independently of the implementation.
fn concat_shifted(template: &[Program], n_blocks: usize) -> Vec<Program> {
    let mut max_msg = 0u64;
    let mut max_sync = 0u32;
    let mut any_msg = false;
    let mut any_sync = false;
    for p in template {
        for i in p.instrs() {
            match *i {
                Instr::Send { msg, .. } | Instr::Recv { msg, .. } => {
                    max_msg = max_msg.max(msg.0);
                    any_msg = true;
                }
                Instr::Sync(id) => {
                    max_sync = max_sync.max(id);
                    any_sync = true;
                }
                _ => {}
            }
        }
    }
    let msg_stride = if any_msg { max_msg + 1 } else { 0 };
    let sync_stride = if any_sync { max_sync + 1 } else { 0 };
    let mut out = vec![Program::new(); template.len()];
    for block in 0..n_blocks as u64 {
        let (dm, ds) = (block * msg_stride, block as u32 * sync_stride);
        for (o, t) in out.iter_mut().zip(template) {
            o.extend(t.instrs().iter().map(|&instr| match instr {
                Instr::Send { to, msg, bytes } => Instr::Send { to, msg: MsgId(msg.0 + dm), bytes },
                Instr::Recv { from, msg } => Instr::Recv { from, msg: MsgId(msg.0 + dm) },
                Instr::Sync(id) => Instr::Sync(id + ds),
                other => other,
            }));
        }
    }
    out
}

/// Asserts symbolic == periodic == full at every given depth. Returns
/// `false` when no fixed point is provable for this template (skipped).
fn assert_symbolic_lockstep(
    chip: &ChipSpec,
    n_chips: usize,
    template: &[Program],
    depths: &[usize],
    context: &str,
) -> bool {
    let machine = Machine::homogeneous(*chip, n_chips);
    let Some(model) = SymbolicMakespan::derive(&machine, template).unwrap() else {
        return false;
    };
    for &n in depths {
        let sym = model.eval(n);
        let fast = machine.run_periodic(template, n).unwrap();
        let full = machine.run(&concat_shifted(template, n)).unwrap();
        assert_eq!(sym, fast, "symbolic != periodic: {context} n_blocks={n}");
        assert_eq!(sym, full, "symbolic != full: {context} n_blocks={n}");
        assert_eq!(
            model.makespan(n),
            sym.makespan,
            "closed form != evaluated stats: {context} n_blocks={n}"
        );
    }
    true
}

/// Depths that straddle every regime of the closed form: the exact
/// prefix (n at or below the warm segment count), the first
/// extrapolated block, and the target depth.
fn probe_depths(model_depth: usize) -> Vec<usize> {
    let mut d = vec![1, 2, 3, 5, model_depth];
    d.sort_unstable();
    d.dedup();
    d.retain(|&n| n >= 1);
    d
}

fn assert_grid_symbolic(grid: &SweepGrid, min_proven: usize) {
    let mut proven = 0usize;
    for scenario in grid.scenarios() {
        let Ok(compiled) = scenario.compile_schedule() else {
            continue; // invalid partition for this chip count
        };
        let chip = scenario.chip();
        let context = format!(
            "{} x{} {} {}",
            scenario.config.name,
            scenario.n_chips,
            scenario.mode,
            scenario.topology.label()
        );
        if assert_symbolic_lockstep(
            &chip,
            scenario.n_chips,
            compiled.template(),
            &probe_depths(scenario.n_blocks()),
            &context,
        ) {
            proven += 1;
        }
    }
    assert!(
        proven >= min_proven,
        "only {proven} scenarios proved a fixed point (expected at least {min_proven})"
    );
}

#[test]
fn default_grid_scenarios_symbolic_lockstep() {
    assert_grid_symbolic(&SweepGrid::paper_default(), 20);
}

#[test]
fn deep_grid_scenarios_symbolic_lockstep() {
    assert_grid_symbolic(&SweepGrid::deep_default(), 4);
}

#[test]
fn batch_grid_scenarios_symbolic_lockstep() {
    assert_grid_symbolic(&SweepGrid::batch_default(), 4);
}

#[test]
fn plane_matches_independent_derivations_on_an_eight_chip_schedule() {
    // The bandwidth plane must be indistinguishable from deriving each
    // bandwidth from scratch, including pricing-class sharing.
    let cfg = TransformerConfig::tiny_llama_42m();
    let chip = ChipSpec::siracusa();
    let template =
        Scheduler::new(&cfg, 8, &chip).unwrap().block_programs(InferenceMode::Autoregressive);
    let pcts = [10, 25, 50, 75, 100];
    let plane = SymbolicPlane::derive(&chip, 8, &template, &pcts).unwrap();
    for &pct in &pcts {
        let mut scaled = chip;
        scaled.link.bytes_per_cycle *= f64::from(pct) / 100.0;
        let machine = Machine::homogeneous(scaled, 8);
        for n in [1, 7, cfg.n_layers, 300] {
            assert_eq!(
                plane.eval(pct, n).expect("pct in plane"),
                machine.run_periodic(&template, n).unwrap(),
                "bw {pct}% n_blocks={n}"
            );
        }
    }
    assert!(plane.warmups() <= pcts.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Symbolic == periodic == full on randomized model configurations:
    /// random architecture, chip count, mode, depth, link bandwidth, and
    /// L2 budget (which moves the residency crossovers).
    #[test]
    fn prop_randomized_models_symbolic_lockstep(
        embed_i in 0usize..3,
        heads in prop::sample::select(vec![2usize, 4, 8]),
        kv_div in prop::sample::select(vec![1usize, 2]),
        ffn_mul in prop::sample::select(vec![1usize, 2, 4]),
        seq in prop::sample::select(vec![8usize, 32, 128]),
        chips in prop::sample::select(vec![1usize, 2, 4, 8]),
        prompt in prop::sample::select(vec![false, true]),
        n_blocks in 1usize..40,
        bw_pct in prop::sample::select(vec![25u32, 50, 100]),
        l2_fraction in prop::sample::select(vec![0.2f64, 0.75]),
    ) {
        let embed = [128usize, 256, 512][embed_i];
        prop_assume!(heads <= embed && embed.is_multiple_of(heads));
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.name = "randomized".to_owned();
        cfg.embed_dim = embed;
        cfg.n_heads = heads;
        cfg.n_kv_heads = heads / kv_div;
        cfg.ffn_dim = embed * ffn_mul;
        cfg.seq_len = seq;
        prop_assume!(cfg.validate().is_ok());
        let mode = if prompt { InferenceMode::Prompt } else { InferenceMode::Autoregressive };
        let mut chip = ChipSpec::siracusa();
        chip.link.bytes_per_cycle *= f64::from(bw_pct) / 100.0;
        chip.l2_usable_fraction = l2_fraction;
        prop_assume!(Scheduler::new(&cfg, chips, &chip).is_ok());
        let template = Scheduler::new(&cfg, chips, &chip).unwrap().block_programs(mode);
        let machine = Machine::homogeneous(chip, chips);
        let Some(model) = SymbolicMakespan::derive(&machine, &template).unwrap() else {
            // Unprovable fixed point: covered by the periodic fallback suite.
            return Ok(());
        };
        let sym = model.eval(n_blocks);
        let fast = machine.run_periodic(&template, n_blocks).unwrap();
        let full = machine.run(&concat_shifted(&template, n_blocks)).unwrap();
        prop_assert_eq!(&sym, &fast);
        prop_assert_eq!(&sym, &full);
        prop_assert_eq!(model.makespan(n_blocks), sym.makespan);
    }
}
