//! Integration suite for the scenario-sweep engine (see DESIGN.md §7):
//!
//! 1. **Determinism** — two cold runs of the same grid produce
//!    byte-identical CSV and JSON.
//! 2. **Cache correctness** — a cached re-run answers every scenario from
//!    the cache and matches the cold run byte-for-byte; serial and
//!    parallel engines agree.
//! 3. **Functional equivalence** — the sweep-engine code path reproduces
//!    the pre-refactor harness numbers exactly: every fig4/fig5/fig6
//!    point, the Table I "ours" row, and the headline numbers equal
//!    direct `DistributedSystem` simulation of the same configuration.
//! 4. **Grid scale** — the default `mtp sweep` grid yields at least 48
//!    valid scenarios end to end.

use mtp::core::{DistributedSystem, MemoryPlan, PartitionSpec, WeightResidency};
use mtp::harness::sweep::{
    ModelPreset, PlacementPolicy, Scenario, Span, SweepEngine, SweepGrid, TopologySpec, CSV_HEADER,
};
use mtp::harness::{fig4, fig5, fig6, headline, table1};
use mtp::model::{InferenceMode, TransformerConfig};
use proptest::prelude::*;

fn mixed_grid() -> SweepGrid {
    SweepGrid::new(
        vec![
            (TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive),
            (TransformerConfig::tiny_llama_42m().with_seq_len(16), InferenceMode::Prompt),
            (TransformerConfig::mobile_bert(), InferenceMode::Prompt),
        ],
        vec![1, 2, 4, 8],
    )
    .with_topologies(vec![TopologySpec::PaperDefault, TopologySpec::Flat])
    .with_link_bw_pcts(vec![100, 50])
}

/// Pre-PR checksum of the mixed grid's CSV bytes (see
/// [`sweep_output_checksums_are_pinned`]).
const PINNED_CSV_FNV64: u64 = 2_412_179_117_525_011_204;
/// Pre-PR checksum of the mixed grid's JSON bytes.
const PINNED_JSON_FNV64: u64 = 10_638_090_856_799_012_347;

/// FNV-1a 64-bit hash (stable, dependency-free) used to pin sweep output.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pins the exact bytes of the mixed grid's CSV and JSON output.
///
/// These checksums were captured on the pre-perf-rewrite code (PR 2), so
/// they prove the zero-alloc kernels, trace sinks, program templating,
/// cache-key rework, and the batching subsystem (whose batch=1 rows must
/// serialize exactly as the pre-batching engine did) change *nothing*
/// about what the sweep reports. If an intentional semantic change ever
/// touches sweep output, recompute both constants and say so in the
/// commit message.
#[test]
fn sweep_output_checksums_are_pinned() {
    let results = SweepEngine::new().run(&mixed_grid());
    assert_eq!(
        fnv1a64(results.to_csv().as_bytes()),
        PINNED_CSV_FNV64,
        "sweep CSV bytes changed; the perf rewrite must be output-preserving"
    );
    assert_eq!(
        fnv1a64(results.to_json().as_bytes()),
        PINNED_JSON_FNV64,
        "sweep JSON bytes changed; the perf rewrite must be output-preserving"
    );
}

/// The row-streaming CSV sink must emit byte-identical output to the
/// materialized path — locked against the same pinned pre-PR checksum,
/// so streaming can never drift from what `to_csv` reports.
#[test]
fn streamed_csv_bytes_match_pinned_checksum() {
    let engine = SweepEngine::new();
    let mut streamed = Vec::new();
    let summary = engine.run_streamed(&mixed_grid().scenarios(), &mut streamed).unwrap();
    assert_eq!(
        fnv1a64(&streamed),
        PINNED_CSV_FNV64,
        "streamed CSV bytes diverged from the pinned materialized output"
    );
    let materialized = SweepEngine::new().run(&mixed_grid());
    assert_eq!(summary.rows, materialized.rows.len());
    assert_eq!(summary.skipped, materialized.skipped.len());
    // Flat memory: the persistent report cache holds nothing afterwards.
    assert_eq!(engine.cached_len(), 0);
}

#[test]
fn two_cold_runs_are_byte_identical() {
    let grid = mixed_grid();
    let a = SweepEngine::new().run(&grid);
    let b = SweepEngine::new().run(&grid);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.render(), b.render());
}

#[test]
fn cached_rerun_matches_cold_run() {
    let grid = mixed_grid();
    let engine = SweepEngine::new();
    let cold = engine.run(&grid);
    assert_eq!(cold.cache_hits + cold.unique_simulated, cold.rows.len());
    let warm = engine.run(&grid);
    assert_eq!(warm.unique_simulated, 0, "everything must come from the cache");
    assert_eq!(warm.cache_hits, warm.rows.len());
    assert_eq!(cold.to_csv(), warm.to_csv());
    assert_eq!(cold.to_json(), warm.to_json());
}

#[test]
fn serial_and_parallel_engines_agree() {
    let grid = mixed_grid();
    let serial = SweepEngine::serial().run(&grid);
    let parallel = SweepEngine::with_threads(8).run(&grid);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
}

/// The pre-refactor fig4/fig5/fig6 harness simulated each point as
/// `DistributedSystem::paper_default(cfg, n).simulate_block(mode)`. The
/// sweep engine must reproduce those numbers exactly.
#[test]
fn fig4_rows_equal_pre_refactor_simulation() {
    let cases = [
        (TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, fig4::fig4a()),
        (
            TransformerConfig::tiny_llama_42m().with_seq_len(16),
            InferenceMode::Prompt,
            fig4::fig4b(),
        ),
        (TransformerConfig::mobile_bert(), InferenceMode::Prompt, fig4::fig4c()),
    ];
    for (cfg, mode, points) in cases {
        for p in points.unwrap() {
            let direct = DistributedSystem::paper_default(cfg.clone(), p.n_chips)
                .unwrap()
                .simulate_block(mode)
                .unwrap();
            assert_eq!(p.report.stats, direct.stats, "{} x{}", cfg.name, p.n_chips);
            assert_eq!(p.report.residency, direct.residency);
            assert!((p.report.energy_mj() - direct.energy_mj()).abs() < 1e-12);
        }
    }
}

#[test]
fn fig5_and_fig6_rows_equal_pre_refactor_simulation() {
    let panel = fig5::fig5a().unwrap();
    let scaled_cfg = TransformerConfig::tiny_llama_scaled_64h();
    for p in &panel.scaled {
        let direct = DistributedSystem::paper_default(scaled_cfg.clone(), p.n_chips)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        assert_eq!(p.report.stats, direct.stats);
    }
    let fig = fig6::run().unwrap();
    let prompt_cfg = TransformerConfig::tiny_llama_scaled_64h().with_seq_len(16);
    for p in &fig.prompt {
        let direct = DistributedSystem::paper_default(prompt_cfg.clone(), p.n_chips)
            .unwrap()
            .simulate_block(InferenceMode::Prompt)
            .unwrap();
        assert_eq!(p.report.stats, direct.stats);
    }
}

#[test]
fn table1_ours_row_equals_pre_refactor_model_pass() {
    let rows = table1::run(4, InferenceMode::Autoregressive).unwrap();
    let ours = rows[0].measured.as_ref().unwrap();
    let direct = DistributedSystem::paper_default(TransformerConfig::tiny_llama_42m(), 4)
        .unwrap()
        .simulate_model(InferenceMode::Autoregressive)
        .unwrap();
    assert_eq!(ours.stats, direct.stats);
    assert_eq!(ours.n_blocks, direct.n_blocks);
}

#[test]
fn headline_numbers_equal_pre_refactor_simulation() {
    let h = headline::run().unwrap();
    let cfg = TransformerConfig::tiny_llama_42m();
    let ar = InferenceMode::Autoregressive;
    let ar1 = DistributedSystem::paper_default(cfg.clone(), 1).unwrap().simulate_block(ar).unwrap();
    let ar8 = DistributedSystem::paper_default(cfg, 8).unwrap().simulate_block(ar).unwrap();
    assert!((h.tinyllama_ar_speedup_8 - ar8.speedup_over(&ar1)).abs() < 1e-12);
    assert!((h.tinyllama_ar_latency_ms - ar8.runtime_ms()).abs() < 1e-12);
    assert!((h.tinyllama_ar_energy_mj - ar8.energy_mj()).abs() < 1e-12);
}

#[test]
fn default_cli_grid_runs_at_least_48_scenarios() {
    let grid = SweepGrid::paper_default();
    let results = SweepEngine::new().run(&grid);
    assert!(results.rows.len() >= 48, "only {} valid scenarios", results.rows.len());
    let csv = results.to_csv();
    assert_eq!(csv.lines().next().unwrap(), CSV_HEADER);
    assert_eq!(csv.lines().count(), results.rows.len() + 1);
    // Every skip is an explained divisibility violation.
    for s in &results.skipped {
        assert!(s.reason.contains("share"), "unexpected skip reason: {}", s.reason);
    }
}

/// The deep grid is where the warmup-checkpoint reuse engages (its
/// depth variants share one block template per chip count, so the
/// engine warms up once and resumes every depth from the checkpoint).
/// Every engine row must still equal the direct, uncached simulation of
/// its scenario — warm resume is an optimization, never a semantic.
#[test]
fn deep_grid_warm_resume_rows_equal_direct_simulation() {
    let results = SweepEngine::serial().run(&SweepGrid::deep_default());
    assert!(!results.rows.is_empty());
    for row in &results.rows {
        let direct = row.scenario.run().unwrap();
        assert_eq!(
            row.report.stats, direct.stats,
            "{} x{} diverged from its cold run",
            row.scenario.config.name, row.scenario.n_chips
        );
        assert_eq!(row.report.n_blocks, direct.n_blocks);
        assert_eq!(row.report.residency, direct.residency);
    }
}

#[test]
fn model_span_scenarios_simulate_all_layers() {
    let engine = SweepEngine::new();
    let cfg = TransformerConfig::tiny_llama_42m();
    let block =
        engine.run_one(&Scenario::new(cfg.clone(), InferenceMode::Autoregressive, 8)).unwrap();
    let model = engine
        .run_one(
            &Scenario::new(cfg.clone(), InferenceMode::Autoregressive, 8).with_span(Span::Model),
        )
        .unwrap();
    assert_eq!(block.n_blocks, 1);
    assert_eq!(model.n_blocks, cfg.n_layers);
    assert!(model.stats.makespan > block.stats.makespan);
}

/// The residency regime a scenario's memory plan selects (the only path
/// through which model depth may legitimately shape a block template).
fn residency_of(s: &Scenario) -> WeightResidency {
    let spec = PartitionSpec::new(&s.config, s.n_chips).unwrap();
    MemoryPlan::decide(&s.config, &spec, &s.chip()).unwrap().residency
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled-schedule cache-key hygiene: scenarios differing in any
    /// structural field never share a key; depth-only variants always
    /// share one while the residency regime is unchanged (and never when
    /// depth flips the regime); bandwidth, span, and uniform batch size
    /// never split a key (any uniform batch — including batch 1, the
    /// single-request path — reuses the same request-slot template).
    #[test]
    fn prop_schedule_key_hygiene(
        preset_i in 0usize..4,
        chips in prop::sample::select(vec![1usize, 2, 4, 8]),
        prompt in prop::sample::select(vec![false, true]),
        topo_i in 0usize..3,
        streamed in prop::sample::select(vec![false, true]),
        bw in prop::sample::select(vec![25u32, 50, 100]),
        model_span in prop::sample::select(vec![false, true]),
        batch in prop::sample::select(vec![1usize, 2, 16, 64]),
        depth in 1usize..300,
        mutation in 0usize..5,
    ) {
        let preset = [
            ModelPreset::TinyLlama,
            ModelPreset::TinyLlamaScaled64h,
            ModelPreset::TinyLlamaGqa(2),
            ModelPreset::MobileBert,
        ][preset_i];
        let mode = if prompt { InferenceMode::Prompt } else { InferenceMode::Autoregressive };
        let mut base = Scenario::new(preset.config(mode), mode, chips)
            .with_topology(
                [TopologySpec::PaperDefault, TopologySpec::Flat,
                 TopologySpec::Hierarchical { group_size: 2 }][topo_i],
            )
            .with_link_bw_pct(bw)
            .unwrap()
            .with_batch(batch);
        if streamed {
            base = base.with_placement(PlacementPolicy::ForceStreamed);
        }
        if model_span {
            base = base.with_span(Span::Model);
        }
        let Ok(key) = base.schedule_key() else {
            // Invalid partition: no schedule, nothing to share.
            return Ok(());
        };

        // Depth-only variants share exactly while the residency regime is
        // unchanged.
        let mut deep = base.clone();
        deep.config = deep.config.clone().with_n_layers(depth);
        deep.config.name = format!("{}-d{depth}", base.config.name);
        let deep_key = deep.schedule_key().unwrap();
        if residency_of(&base) == residency_of(&deep) {
            prop_assert_eq!(&deep_key, &key, "depth-only variant must share the template");
        } else {
            prop_assert!(deep_key != key, "residency-changing depth must not share");
        }

        // Bandwidth, link regime, span, and uniform batch size are
        // non-structural: never split.
        prop_assert_eq!(base.clone().with_link_bw_pct(if bw == 100 { 50 } else { 100 })
            .unwrap().schedule_key().unwrap(), key.clone());
        prop_assert_eq!(
            base.clone()
                .with_link_regime(mtp::sim::LinkRegime::Queued {
                    buffer_bytes: u64::MAX,
                    discipline: mtp::sim::QueueDiscipline::Backpressure,
                })
                .schedule_key()
                .unwrap(),
            key.clone()
        );
        prop_assert_eq!(
            base.clone().with_span(if model_span { Span::Block } else { Span::Model })
                .schedule_key().unwrap(),
            key.clone()
        );
        prop_assert_eq!(
            base.clone().with_batch(if batch == 1 { 32 } else { 1 }).schedule_key().unwrap(),
            key.clone()
        );
        // The batch size still multiplies the simulated block instances
        // and distinguishes the scenario itself.
        let rebatched = base.clone().with_batch(batch + 1);
        prop_assert_eq!(rebatched.n_blocks(), base.n_blocks() / batch * (batch + 1));
        prop_assert!(rebatched.key() != base.key());

        // A change to any structural field never shares. Exception: with
        // a single chip no communication is emitted, so the topology is
        // not structural there and the key deliberately collapses it.
        let expect_shared = mutation == 2 && chips == 1;
        let mutated = match mutation {
            0 => {
                let other = if prompt { InferenceMode::Autoregressive } else { InferenceMode::Prompt };
                Scenario { mode: other, ..base.clone() }
            }
            1 => Scenario { n_chips: if chips == 8 { 4 } else { chips * 2 }, ..base.clone() },
            2 => base.clone().with_topology(if base.topology == TopologySpec::Flat {
                TopologySpec::PaperDefault
            } else {
                TopologySpec::Flat
            }),
            3 => base.clone().with_placement(if streamed {
                PlacementPolicy::Auto
            } else {
                PlacementPolicy::ForceStreamed
            }),
            _ => {
                let mut s = base.clone();
                s.config.seq_len += 1;
                s
            }
        };
        if let Ok(mutated_key) = mutated.schedule_key() {
            if expect_shared {
                prop_assert_eq!(mutated_key, key, "single-chip topology is not structural");
            } else {
                prop_assert!(mutated_key != key, "structural change must split the key");
            }
        }
    }
}

#[test]
fn placement_axis_reproduces_buffering_ablation() {
    // The forced-streaming scenario equals the pre-refactor ablation's
    // hand-built shrunken-L2 system.
    let engine = SweepEngine::new();
    let cfg = TransformerConfig::tiny_llama_42m();
    let forced = engine
        .run_one(
            &Scenario::new(cfg.clone(), InferenceMode::Autoregressive, 8)
                .with_placement(PlacementPolicy::ForceStreamed),
        )
        .unwrap();
    let mut chip = mtp::sim::ChipSpec::siracusa();
    chip.l2_usable_fraction = 0.2;
    let direct = DistributedSystem::with_chip(cfg, 8, chip)
        .unwrap()
        .simulate_block(InferenceMode::Autoregressive)
        .unwrap();
    assert_eq!(forced.stats, direct.stats);
    assert_eq!(forced.residency, direct.residency);
}
