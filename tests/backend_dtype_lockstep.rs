//! Lockstep and error-bound suite for the backend/dtype layer (PR 8):
//!
//! 1. **Backend bit-identity** — every available [`mtp::tensor::Backend`]
//!    (the scalar fallback, and the SIMD backend where the host supports
//!    it) produces bit-identical f32 GEMM results to the retained naive
//!    triple loops, over arbitrary shapes including the vector-width tail
//!    mixes.
//! 2. **f16 error bounds** — the half-precision matmul is bit-identical
//!    to an f32 matmul of the *rounded* operands (widening is exact and
//!    the accumulation chains are shared), and its deviation from the
//!    unrounded f32 product stays inside the analytic representation
//!    bound, asserted per output element.
//! 3. **int8 error bounds** — symmetric quantization round-trips within
//!    half a quantization step, saturates exactly at the ±127 codes, and
//!    the i32-accumulated integer matmul lands within the analytic
//!    quantization-noise bound of the f32 product.
//! 4. **Workspace alias/reuse** — over arbitrary acquire/release
//!    interleavings no two live scratch buffers overlap, and in steady
//!    state (a warmed pool seeing a repeating size mix) the allocation
//!    count is pinned while acquisitions keep climbing — including when
//!    driven through the real backend-dispatched kernels.

use mtp::tensor::{
    dequantize, naive, quantize_symmetric, reset_thread_workspace, thread_workspace_stats, Backend,
    ScalarBackend, Shape, Tensor, Workspace,
};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix in [-1, 1] with exact zeros
/// sprinkled in (same generator family as `perf_lockstep.rs`).
fn tensor_with_zeros(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_fn(Shape::mat(rows, cols), |(r, c)| {
        let mut z =
            seed.wrapping_add(r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(c as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        if z.is_multiple_of(7) {
            0.0
        } else {
            ((z >> 40) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        }
    })
}

/// Every backend reachable on this host, with its name for diagnostics.
fn all_backends() -> Vec<(&'static str, Box<dyn Backend>)> {
    let mut backends: Vec<(&'static str, Box<dyn Backend>)> =
        vec![("scalar", Box::new(ScalarBackend))];
    #[cfg(target_arch = "x86_64")]
    if let Some(simd) = mtp::tensor::SimdBackend::try_new() {
        backends.push(("simd", Box::new(simd)));
    }
    backends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f32 GEMM bit-identity: every backend == naive, for matmul and
    /// matmul_t, across shapes covering zmm/ymm panels and scalar tails.
    #[test]
    fn prop_every_backend_bit_matches_naive(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..70,
        seed in 0u64..10_000,
    ) {
        let a = tensor_with_zeros(m, k, seed);
        let b = tensor_with_zeros(k, n, seed.wrapping_add(1));
        let bt = tensor_with_zeros(n, k, seed.wrapping_add(2));
        let golden = naive::matmul(&a, &b).unwrap();
        let golden_t = naive::matmul_t(&a, &bt).unwrap();
        for (name, be) in all_backends() {
            let mut out = vec![f32::NAN; m * n];
            be.matmul_f32(a.as_slice(), b.as_slice(), &mut out, m, k, n);
            for (i, (x, y)) in out.iter().zip(golden.as_slice()).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} matmul elem {}", name, i);
            }
            let mut out_t = vec![f32::NAN; m * n];
            be.matmul_t_f32(a.as_slice(), bt.as_slice(), &mut out_t, m, k, n);
            for (i, (x, y)) in out_t.iter().zip(golden_t.as_slice()).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} matmul_t elem {}", name, i);
            }
        }
    }

    /// f16 matmul: bit-identical to the f32 product of the rounded
    /// operands, and within the analytic representation bound of the
    /// unrounded product.
    #[test]
    fn prop_f16_matmul_bit_exact_on_rounded_and_bounded_vs_f32(
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let a = tensor_with_zeros(m, k, seed);
        let b = tensor_with_zeros(k, n, seed.wrapping_add(3));
        let (ah, bh) = (a.to_f16(), b.to_f16());
        let half = ah.try_matmul(&bh).unwrap();
        // Bit-identity leg: widening is exact, so the f16 matmul must
        // equal the f32 matmul of the widened (rounded) operands bit for
        // bit — same kernels, same chains.
        let rounded = naive::matmul(&ah.to_f32_tensor(), &bh.to_f32_tensor()).unwrap();
        for (i, (x, y)) in half.as_slice().iter().zip(rounded.as_slice()).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "f16 vs rounded-f32 elem {}", i);
        }
        // Error-bound leg: each operand rounds with relative error at
        // most 2^-11, so each product term errs by ~2*2^-11 relative;
        // bound the output error by that factor of the absolute-value
        // product (plus f32 accumulation slack).
        let exact = naive::matmul(&a, &b).unwrap();
        let abs_a = Tensor::from_fn(a.shape(), |(r, c)| a.at(r, c).abs());
        let abs_b = Tensor::from_fn(b.shape(), |(r, c)| b.at(r, c).abs());
        let abs_dot = naive::matmul(&abs_a, &abs_b).unwrap();
        for (i, (x, y)) in half.as_slice().iter().zip(exact.as_slice()).enumerate() {
            let bound = 2.5e-3 * abs_dot.as_slice()[i] + 1e-5;
            prop_assert!(
                (x - y).abs() <= bound,
                "f16 elem {} err {} exceeds bound {}",
                i,
                (x - y).abs(),
                bound
            );
        }
    }

    /// Symmetric int8 quantization: round-trip within half a step, codes
    /// saturate exactly at ±127, and the max-magnitude element uses the
    /// extreme code.
    #[test]
    fn prop_quant_roundtrip_bounded_and_saturating(
        rows in 1usize..10,
        cols in 1usize..24,
        scale_mille in 1000u32..50_000,
        seed in 0u64..10_000,
    ) {
        let t = tensor_with_zeros(rows, cols, seed).scaled(scale_mille as f32 / 1000.0);
        let q = quantize_symmetric(&t);
        let step = q.quantization().scale;
        let back = dequantize(&q);
        prop_assert!(t.max_abs_diff(&back).unwrap() <= step * 0.5 + step * 1e-4);
        prop_assert!(q.as_slice().iter().all(|&v| (-127..=127).contains(&v)),
            "a code escaped the symmetric range");
        if t.max_abs() > 0.0 {
            prop_assert!(q.as_slice().iter().any(|&v| v.abs() == 127),
                "the max-magnitude element must map to the extreme code");
        }
    }

    /// Integer matmul with i32 accumulation: exact in integers (all
    /// backends agree bit for bit) and within the analytic
    /// quantization-noise bound of the f32 product.
    #[test]
    fn prop_int8_matmul_error_bounded(
        m in 1usize..10,
        k in 1usize..32,
        n in 1usize..24,
        seed in 0u64..10_000,
    ) {
        let a = tensor_with_zeros(m, k, seed);
        let b = tensor_with_zeros(k, n, seed.wrapping_add(4));
        let (qa, qb) = (quantize_symmetric(&a), quantize_symmetric(&b));
        let (acc, shape, scale) = qa.matmul_i32(&qb).unwrap();
        // Integer exactness: the scalar backend must reproduce the active
        // backend's accumulators exactly.
        let mut scalar_acc = vec![0i32; m * n];
        ScalarBackend.matmul_i8_i32(qa.as_slice(), qb.as_slice(), &mut scalar_acc, m, k, n);
        prop_assert_eq!(&acc, &scalar_acc, "integer sums must be backend-independent");
        // Error bound: |a - sa*qa| <= sa/2 per element (no saturation for
        // scales derived from max_abs), so each output errs by at most
        // sum_k |a|*sb/2 + |b|*sa/2 + sa*sb/4.
        let (sa, sb) = (qa.quantization().scale, qb.quantization().scale);
        let exact = naive::matmul(&a, &b).unwrap();
        let approx = Tensor::from_vec(shape, acc.iter().map(|&v| v as f32 * scale).collect()).unwrap();
        for i in 0..m {
            let row_abs: f32 = (0..k).map(|p| a.at(i, p).abs()).sum();
            for j in 0..n {
                let col_abs: f32 = (0..k).map(|p| b.at(p, j).abs()).sum();
                let bound = 0.5 * sb * row_abs + 0.5 * sa * col_abs
                    + 0.25 * sa * sb * k as f32 + 1e-4;
                let err = (exact.at(i, j) - approx.at(i, j)).abs();
                prop_assert!(err <= bound, "({},{}) err {} exceeds bound {}", i, j, err, bound);
            }
        }
    }

    /// Workspace alias safety: over arbitrary acquire/release
    /// interleavings, the address ranges of live buffers never overlap.
    #[test]
    fn prop_workspace_live_buffers_never_alias(
        n_ops in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut w = Workspace::new();
        let mut live: Vec<Vec<f32>> = Vec::new();
        for _ in 0..n_ops {
            let (op, len) = (next() % 2, (next() % 511 + 1) as usize);
            if op == 0 || live.is_empty() {
                live.push(w.acquire(len));
            } else {
                let buf = live.remove(len % live.len());
                w.release(buf);
            }
            // Pairwise non-overlap of every live buffer's address range.
            for i in 0..live.len() {
                for j in (i + 1)..live.len() {
                    let (ai, ni) = (live[i].as_ptr() as usize, live[i].capacity() * 4);
                    let (aj, nj) = (live[j].as_ptr() as usize, live[j].capacity() * 4);
                    prop_assert!(
                        ai + ni <= aj || aj + nj <= ai,
                        "live buffers {} and {} overlap",
                        i,
                        j
                    );
                }
            }
        }
        for buf in live {
            w.release(buf);
        }
    }

    /// Workspace steady state: once the pool has seen one round of a
    /// repeating size mix, further rounds acquire without allocating.
    #[test]
    fn prop_workspace_steady_state_allocation_free(
        n_sizes in 1usize..8,
        rounds in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let mut state = seed.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let sizes: Vec<usize> = (0..n_sizes).map(|_| (next() % 1023 + 1) as usize).collect();
        let mut w = Workspace::new();
        let run_round = |w: &mut Workspace| {
            let held: Vec<Vec<f32>> = sizes.iter().map(|&s| w.acquire(s)).collect();
            for buf in held {
                w.release(buf);
            }
        };
        run_round(&mut w);
        let warm = w.stats().allocations;
        for _ in 0..rounds {
            run_round(&mut w);
        }
        let s = w.stats();
        prop_assert_eq!(s.allocations, warm, "steady state allocated");
        prop_assert_eq!(s.acquisitions, (rounds as u64 + 1) * sizes.len() as u64);
    }
}

/// The real dispatched kernels hold the steady-state property end to
/// end: after one warm pass, repeated matmul/matmul_t calls on the same
/// shapes draw every packing buffer from the pool.
#[test]
fn kernel_scratch_is_allocation_free_in_steady_state() {
    let a = tensor_with_zeros(16, 96, 1);
    let b = tensor_with_zeros(96, 64, 2);
    let bt = tensor_with_zeros(64, 96, 3);
    let mut out = Tensor::default();
    let mut out_t = Tensor::default();
    reset_thread_workspace();
    a.matmul_into(&b, &mut out).unwrap();
    a.matmul_t_into(&bt, &mut out_t).unwrap();
    let warm = thread_workspace_stats();
    for _ in 0..10 {
        a.matmul_into(&b, &mut out).unwrap();
        a.matmul_t_into(&bt, &mut out_t).unwrap();
    }
    let steady = thread_workspace_stats();
    assert_eq!(
        steady.allocations, warm.allocations,
        "steady-state kernels allocated fresh scratch"
    );
    assert!(steady.acquisitions >= warm.acquisitions, "acquisition counter must be monotone");
    reset_thread_workspace();
}
