//! Exactness suite for the multi-request batching subsystem (see
//! DESIGN.md §10), in two halves:
//!
//! **Batch=1 lockstep** — a batch of one request must be *bit-identical*
//! to the pre-batching single-request path at every layer: schedule
//! programs ([`Scheduler::batch_block_programs`] vs
//! [`Scheduler::block_programs`]), simulation (`RunStats` equality of
//! [`DistributedSystem::simulate_batch`] vs `simulate_model`,
//! [`CompiledSchedule::simulate_batched`] vs `simulate`, batched sweep
//! scenarios vs unbatched ones) — across the default sweep grid, the
//! deep presets, and all three residency regimes.
//!
//! **Batch exactness and isolation** — uniform batches must equal full
//! event-driven simulation of the interleaved block-major program
//! stream (no periodicity shortcut may change a counter); heterogeneous
//! prompt batches must equal an independently mirrored interleaving;
//! and at the functional level, randomized batches must leave every
//! request's outputs bit-identical to running it alone (per-request
//! KV-cache isolation), whatever the batch composition, arrival
//! offsets, and interleaving.

use mtp::core::schedule::{CompiledSchedule, Scheduler};
use mtp::core::DistributedSystem;
use mtp::harness::sweep::{Span, SweepEngine, SweepGrid};
use mtp::model::generate::generate_greedy;
use mtp::model::{
    generate_greedy_batch, BatchDecoder, BatchWorkload, Decoder, Embedding, InferenceMode,
    ModelWeights, RequestSpec, TransformerConfig,
};
use mtp::sim::{ChipSpec, Instr, Machine, MsgId, Program};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Batch=1 lockstep: the single-request path, bit for bit.
// ---------------------------------------------------------------------

/// Batch=1 equals the single-request path across every valid scenario of
/// the default sweep grid: identical schedule programs and identical
/// `RunStats` from the batched façade at full model depth.
#[test]
fn default_grid_batch1_lockstep() {
    let chip = ChipSpec::siracusa();
    for scenario in SweepGrid::paper_default().scenarios() {
        let cfg = &scenario.config;
        if Scheduler::new(cfg, scenario.n_chips, &chip).is_err() {
            continue; // invalid partition for this chip count
        }
        let schip = scenario.chip();
        // Schedule level: one-request batch programs are the block
        // programs, with the same counter state after emission.
        let mut batched = Scheduler::new(cfg, scenario.n_chips, &schip).unwrap();
        let mut single = Scheduler::new(cfg, scenario.n_chips, &schip).unwrap();
        assert_eq!(
            batched.batch_block_programs(scenario.mode, 1).unwrap(),
            single.block_programs(scenario.mode),
            "{} x{}",
            cfg.name,
            scenario.n_chips
        );
        // System level: a uniform batch of one request over the model's
        // own context reports exactly what simulate_model reports.
        let sys = DistributedSystem::with_chip(cfg.clone(), scenario.n_chips, schip).unwrap();
        let workload = BatchWorkload::uniform(1, cfg.seq_len, 0);
        let batched = sys.simulate_batch(scenario.mode, &workload).unwrap();
        let single = sys.simulate_model(scenario.mode).unwrap();
        assert_eq!(batched.stats, single.stats, "{} x{}", cfg.name, scenario.n_chips);
        assert_eq!(batched.n_blocks, single.n_blocks);
        assert_eq!(batched.residency, single.residency);
    }
}

/// Batch=1 lockstep on the deep presets and across all three residency
/// regimes (streamed, double-buffered, resident).
#[test]
fn deep_presets_and_regimes_batch1_lockstep() {
    let chip = ChipSpec::siracusa();
    let ar = InferenceMode::Autoregressive;
    let pr = InferenceMode::Prompt;
    let cases = [
        // Streamed: one chip cannot hold a block.
        (TransformerConfig::tiny_llama_deep(96), 1, ar),
        // Double-buffered: eight chips prefetch slices.
        (TransformerConfig::tiny_llama_deep(96), 8, ar),
        (TransformerConfig::tiny_llama_deep(192), 8, ar),
        (TransformerConfig::mobile_bert_deep(96), 4, pr),
        // Resident: the scaled model's slices fit entirely on 64 chips.
        (TransformerConfig::tiny_llama_scaled_64h(), 64, ar),
    ];
    for (cfg, n_chips, mode) in cases {
        let sys = DistributedSystem::with_chip(cfg.clone(), n_chips, chip).unwrap();
        let workload = BatchWorkload::uniform(1, cfg.seq_len, 0);
        let batched = sys.simulate_batch(mode, &workload).unwrap();
        let single = sys.simulate_model(mode).unwrap();
        assert_eq!(batched.stats, single.stats, "{} x{n_chips} {mode}", cfg.name);
        assert_eq!(batched.residency, single.residency);
        // Compiled-schedule level too.
        let compiled = CompiledSchedule::compile(&cfg, n_chips, &chip, None, mode).unwrap();
        assert_eq!(
            compiled.simulate_batched(&chip, cfg.n_layers, 1).unwrap().stats,
            compiled.simulate(&chip, cfg.n_layers).unwrap().stats,
            "{} x{n_chips}",
            cfg.name
        );
    }
}

/// Batched sweep scenarios at batch=1 report byte-for-byte what the
/// pre-batching engine reports (the whole-engine form of the lockstep).
#[test]
fn engine_batch1_rows_equal_unbatched_rows() {
    let grid = SweepGrid::single(
        TransformerConfig::tiny_llama_42m(),
        InferenceMode::Autoregressive,
        vec![1, 2, 4, 8],
    )
    .with_span(Span::Model);
    let unbatched = SweepEngine::new().run(&grid);
    let explicit = SweepEngine::new().run(&grid.clone().with_batch_sizes(vec![1]));
    assert_eq!(unbatched.to_csv(), explicit.to_csv());
    assert_eq!(unbatched.to_json(), explicit.to_json());
}

// ---------------------------------------------------------------------
// Uniform batches: periodic fast path == full interleaved simulation.
// ---------------------------------------------------------------------

/// Uniform batches across sizes, chip counts, modes, and residency
/// regimes: the periodic request-level fast path must equal full
/// event-driven simulation of the interleaved block-major stream.
#[test]
fn uniform_batches_equal_full_interleaved_simulation() {
    let chip = ChipSpec::siracusa();
    let ar = InferenceMode::Autoregressive;
    let pr = InferenceMode::Prompt;
    let cases = [
        (TransformerConfig::tiny_llama_42m(), 1usize, ar, 2usize, 4usize),
        (TransformerConfig::tiny_llama_42m(), 8, ar, 3, 3),
        (TransformerConfig::tiny_llama_42m().with_seq_len(16), 4, pr, 2, 5),
        (TransformerConfig::mobile_bert(), 4, pr, 2, 2),
        (TransformerConfig::tiny_llama_scaled_64h(), 64, ar, 2, 3),
    ];
    for (cfg, n_chips, mode, n_blocks, batch) in cases {
        let template = Scheduler::new(&cfg, n_chips, &chip).unwrap().block_programs(mode);
        let full_programs = Scheduler::new(&cfg, n_chips, &chip)
            .unwrap()
            .batch_model_programs(mode, n_blocks, batch)
            .unwrap();
        let machine = Machine::homogeneous(chip, n_chips);
        let fast = machine.run_batched(&template, n_blocks, batch).unwrap();
        let full = machine.run(&full_programs).unwrap();
        assert_eq!(fast, full, "{} x{n_chips} {mode} blocks={n_blocks} batch={batch}", cfg.name);
    }
}

/// The deep batched façade equals explicit full simulation of every
/// block instance (96 blocks x 4 requests, scheduled and run end to
/// end).
#[test]
fn deep_batched_system_matches_explicit_full_simulation() {
    let cfg = TransformerConfig::tiny_llama_deep(96);
    let chip = ChipSpec::siracusa();
    let sys = DistributedSystem::paper_default(cfg.clone(), 8).unwrap();
    let fast = sys
        .simulate_batch(InferenceMode::Autoregressive, &BatchWorkload::uniform(4, 128, 0))
        .unwrap();
    let programs = Scheduler::new(&cfg, 8, &chip)
        .unwrap()
        .batch_model_programs(InferenceMode::Autoregressive, 96, 4)
        .unwrap();
    let full = Machine::homogeneous(chip, 8).run(&programs).unwrap();
    assert_eq!(fast.stats, full);
    assert_eq!(fast.n_blocks, 96 * 4);
}

// ---------------------------------------------------------------------
// Heterogeneous batches: the fallback, mirrored independently.
// ---------------------------------------------------------------------

/// Mirrors the heterogeneous interleaving contract independently of the
/// implementation: per-request schedules (each prompt length its own
/// body), disjoint id spaces, block-major request interleaving.
fn mirror_mixed_batch(
    cfg: &TransformerConfig,
    n_chips: usize,
    chip: &ChipSpec,
    prompt_lens: &[usize],
) -> Vec<Program> {
    // Emit each request's full per-block body sequence from its own
    // scheduler, then compute each request's id-space size.
    let mut streams: Vec<Vec<Vec<Program>>> = Vec::new();
    let mut sizes: Vec<(u64, u32)> = Vec::new();
    for &p in prompt_lens {
        let rcfg = cfg.clone().with_seq_len(p);
        let mut s = Scheduler::new(&rcfg, n_chips, chip).unwrap();
        let blocks: Vec<Vec<Program>> =
            (0..cfg.n_layers).map(|_| s.block_programs(InferenceMode::Prompt)).collect();
        let (mut max_msg, mut max_sync) = (0u64, 0u32);
        for progs in &blocks {
            for prog in progs {
                for i in prog.instrs() {
                    match *i {
                        Instr::Send { msg, .. } | Instr::Recv { msg, .. } => {
                            max_msg = max_msg.max(msg.0 + 1);
                        }
                        Instr::Sync(id) => max_sync = max_sync.max(id + 1),
                        _ => {}
                    }
                }
            }
        }
        streams.push(blocks);
        sizes.push((max_msg, max_sync));
    }
    let mut out = vec![Program::new(); n_chips];
    for block in 0..cfg.n_layers {
        let (mut msg_base, mut sync_base) = (0u64, 0u32);
        for (stream, &(dm, ds)) in streams.iter().zip(&sizes) {
            for (o, body) in out.iter_mut().zip(&stream[block]) {
                o.extend(body.instrs().iter().map(|&instr| match instr {
                    Instr::Send { to, msg, bytes } => {
                        Instr::Send { to, msg: MsgId(msg.0 + msg_base), bytes }
                    }
                    Instr::Recv { from, msg } => Instr::Recv { from, msg: MsgId(msg.0 + msg_base) },
                    Instr::Sync(id) => Instr::Sync(id + sync_base),
                    other => other,
                }));
            }
            msg_base += dm;
            sync_base += ds;
        }
    }
    out
}

#[test]
fn mixed_prompt_batches_equal_mirrored_interleaving() {
    let chip = ChipSpec::siracusa();
    let cases: [(TransformerConfig, usize, Vec<usize>); 3] = [
        (TransformerConfig::tiny_llama_42m(), 1, vec![8, 16]),
        (TransformerConfig::tiny_llama_42m(), 4, vec![16, 8, 32]),
        (TransformerConfig::mobile_bert(), 4, vec![64, 268]),
    ];
    for (cfg, n_chips, prompt_lens) in cases {
        let sys = DistributedSystem::paper_default(cfg.clone(), n_chips).unwrap();
        let workload = BatchWorkload::new(
            prompt_lens
                .iter()
                .map(|&p| RequestSpec { prompt_len: p, decode_len: 0, arrival: 0 })
                .collect(),
        )
        .unwrap();
        let report = sys.simulate_batch(InferenceMode::Prompt, &workload).unwrap();
        let mirrored = mirror_mixed_batch(&cfg, n_chips, &chip, &prompt_lens);
        let full = Machine::homogeneous(chip, n_chips).run(&mirrored).unwrap();
        assert_eq!(report.stats, full, "{} x{n_chips} {prompt_lens:?}", cfg.name);
        assert_eq!(report.n_blocks, cfg.n_layers * prompt_lens.len());
    }
}

/// A "mixed" batch whose prompt lengths all agree is uniform, and the
/// uniform fast path must agree with the mirrored full interleaving —
/// the two regimes meet exactly at that boundary.
#[test]
fn regime_boundary_uniform_equals_mirrored() {
    let chip = ChipSpec::siracusa();
    let cfg = TransformerConfig::tiny_llama_42m();
    let sys = DistributedSystem::paper_default(cfg.clone(), 4).unwrap();
    let workload = BatchWorkload::uniform(3, 16, 0);
    let report = sys.simulate_batch(InferenceMode::Prompt, &workload).unwrap();
    let mirrored = mirror_mixed_batch(&cfg, 4, &chip, &[16, 16, 16]);
    let full = Machine::homogeneous(chip, 4).run(&mirrored).unwrap();
    assert_eq!(report.stats, full);
}

// ---------------------------------------------------------------------
// Functional isolation: randomized batches, bit-identical per request.
// ---------------------------------------------------------------------

fn tiny_cfg() -> TransformerConfig {
    let mut cfg = TransformerConfig::tiny_llama_42m();
    cfg.embed_dim = 16;
    cfg.ffn_dim = 24;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 2;
    cfg.n_layers = 2;
    cfg.seq_len = 12;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-request KV-cache isolation: for random batch compositions
    /// (sizes, prompts, decode lengths, arrival offsets), every
    /// request's greedy output through the interleaved batch driver is
    /// bit-identical to running that request alone through the
    /// single-request driver on a fresh decoder.
    #[test]
    fn prop_batched_requests_equal_solo_runs(
        n_requests in 1usize..5,
        seed in 0u64..500,
        weight_seed in 0u64..8,
    ) {
        let cfg = tiny_cfg();
        let weights = ModelWeights::seeded(&cfg, weight_seed);
        let emb = Embedding::seeded(&cfg, 20, weight_seed + 1);
        // Deterministic per-case request shapes from the seed.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        let mut specs = Vec::new();
        let mut prompts = Vec::new();
        for _ in 0..n_requests {
            let prompt_len = next(4) as usize + 1;
            let decode_len = next(5) as usize;
            let arrival = next(4) as usize;
            specs.push(RequestSpec { prompt_len, decode_len, arrival });
            prompts.push((0..prompt_len).map(|_| next(20) as u32).collect::<Vec<_>>());
        }
        let workload = BatchWorkload::new(specs).unwrap();
        prop_assume!(workload.validate_for(&cfg).is_ok());

        let mut batch = BatchDecoder::new(cfg.clone(), weights.clone(), n_requests);
        let batched =
            generate_greedy_batch(&emb, &workload, &prompts, |r, x| batch.step(r, x)).unwrap();

        for (r, prompt) in prompts.iter().enumerate() {
            let spec = workload.requests()[r];
            let mut solo = Decoder::new(cfg.clone(), weights.clone());
            let alone = if spec.decode_len == 0 {
                // The solo driver rejects zero-token generation only in
                // that it still feeds the prompt; mirror by feeding it
                // manually.
                for &t in prompt {
                    let x = emb.embed(t).unwrap();
                    solo.step(&x).unwrap();
                }
                Vec::new()
            } else {
                generate_greedy(&emb, prompt, spec.decode_len, |x| solo.step(x)).unwrap()
            };
            prop_assert_eq!(&batched[r], &alone, "request {} diverged from its solo run", r);
            // The batch's cache for this request matches the solo cache
            // fill (prompt + decoded tokens).
            prop_assert_eq!(batch.cached_len(r), spec.prompt_len + spec.decode_len);
            prop_assert_eq!(solo.cached_len(), spec.prompt_len + spec.decode_len);
        }
    }
}
