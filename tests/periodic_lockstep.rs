//! Exact-equality lockstep suite for the periodic steady-state engine
//! (see DESIGN.md §9): [`mtp::sim::Machine::run_periodic`] must be
//! **indistinguishable** from [`mtp::sim::Machine::run`] on the
//! equivalent concatenated programs — makespan, every per-chip counter,
//! and the sync-phase count — across:
//!
//! 1. every valid scenario of the default sweep grid at full model depth
//!    (all workloads, chip counts, topologies, placements, bandwidths);
//! 2. deep-model passes (96+ blocks), where extrapolation carries almost
//!    the entire span;
//! 3. randomized model configurations (architecture, partitioning, mode,
//!    depth, link bandwidth, shrunken L2) via proptest;
//! 4. randomized raw program templates, which exercise the fallback
//!    paths (unclean boundaries, aperiodic dynamics) as well as the fast
//!    path.

use mtp::core::schedule::Scheduler;
use mtp::core::DistributedSystem;
use mtp::harness::sweep::SweepGrid;
use mtp::kernels::Kernel;
use mtp::model::{InferenceMode, TransformerConfig};
use mtp::sim::{ChipSpec, Instr, Machine, MemPath, MsgId, Program};
use proptest::prelude::*;

/// Concatenates a template `n_blocks` times with fresh ids per block
/// (stride = largest template id + 1) — the contract `run_periodic` is
/// defined against, mirrored here independently of the implementation.
fn concat_shifted(template: &[Program], n_blocks: usize) -> Vec<Program> {
    let mut max_msg = 0u64;
    let mut max_sync = 0u32;
    let mut any_msg = false;
    let mut any_sync = false;
    for p in template {
        for i in p.instrs() {
            match *i {
                Instr::Send { msg, .. } | Instr::Recv { msg, .. } => {
                    max_msg = max_msg.max(msg.0);
                    any_msg = true;
                }
                Instr::Sync(id) => {
                    max_sync = max_sync.max(id);
                    any_sync = true;
                }
                _ => {}
            }
        }
    }
    let msg_stride = if any_msg { max_msg + 1 } else { 0 };
    let sync_stride = if any_sync { max_sync + 1 } else { 0 };
    let mut out = vec![Program::new(); template.len()];
    for block in 0..n_blocks as u64 {
        let (dm, ds) = (block * msg_stride, block as u32 * sync_stride);
        for (o, t) in out.iter_mut().zip(template) {
            o.extend(t.instrs().iter().map(|&instr| match instr {
                Instr::Send { to, msg, bytes } => Instr::Send { to, msg: MsgId(msg.0 + dm), bytes },
                Instr::Recv { from, msg } => Instr::Recv { from, msg: MsgId(msg.0 + dm) },
                Instr::Sync(id) => Instr::Sync(id + ds),
                other => other,
            }));
        }
    }
    out
}

/// Asserts periodic == full for one schedule, via both the raw machine
/// API and the scheduler's own chained id allocation.
fn assert_lockstep(
    cfg: &TransformerConfig,
    n_chips: usize,
    chip: &ChipSpec,
    mode: InferenceMode,
    n_blocks: usize,
) {
    let template = Scheduler::new(cfg, n_chips, chip).unwrap().block_programs(mode);
    let full_programs =
        Scheduler::new(cfg, n_chips, chip).unwrap().model_programs(mode, n_blocks).unwrap();
    let machine = Machine::homogeneous(*chip, n_chips);
    let fast = machine.run_periodic(&template, n_blocks).unwrap();
    let full = machine.run(&full_programs).unwrap();
    assert_eq!(fast, full, "{} x{n_chips} {mode} n_blocks={n_blocks}", cfg.name);
}

#[test]
fn default_grid_scenarios_lockstep_at_model_depth() {
    let chip = ChipSpec::siracusa();
    for scenario in SweepGrid::paper_default().scenarios() {
        let cfg = &scenario.config;
        if Scheduler::new(cfg, scenario.n_chips, &chip).is_err() {
            continue; // invalid partition for this chip count
        }
        assert_lockstep(cfg, scenario.n_chips, &scenario.chip(), scenario.mode, cfg.n_layers);
    }
}

#[test]
fn deep_models_lockstep_across_regimes() {
    let chip = ChipSpec::siracusa();
    let ar = InferenceMode::Autoregressive;
    let pr = InferenceMode::Prompt;
    // Streamed (1 chip), double-buffered (8 chips), and the deep variant
    // of the resident-at-8-layers scaled model (which 96 layers push back
    // to double-buffered at 32 chips).
    assert_lockstep(&TransformerConfig::tiny_llama_deep(96), 1, &chip, ar, 96);
    assert_lockstep(&TransformerConfig::tiny_llama_deep(96), 8, &chip, ar, 96);
    assert_lockstep(&TransformerConfig::tiny_llama_deep(96).with_seq_len(16), 4, &chip, pr, 96);
    assert_lockstep(&TransformerConfig::mobile_bert_deep(96), 4, &chip, pr, 96);
    assert_lockstep(
        &TransformerConfig::tiny_llama_scaled_64h().with_n_layers(64),
        32,
        &chip,
        ar,
        64,
    );
}

#[test]
fn distributed_system_reports_match_explicit_full_simulation() {
    // The façade (CompiledSchedule + run_periodic) must report exactly
    // what scheduling and fully simulating every block reports.
    let cfg = TransformerConfig::tiny_llama_deep(96);
    let sys = DistributedSystem::paper_default(cfg.clone(), 8).unwrap();
    let fast = sys.simulate_model(InferenceMode::Autoregressive).unwrap();
    let chip = ChipSpec::siracusa();
    let programs = Scheduler::new(&cfg, 8, &chip)
        .unwrap()
        .model_programs(InferenceMode::Autoregressive, 96)
        .unwrap();
    let full = Machine::homogeneous(chip, 8).run(&programs).unwrap();
    assert_eq!(fast.stats, full);
    assert_eq!(fast.n_blocks, 96);
}

/// Ring-exchange program template (same generator family as
/// `perf_lockstep.rs`): compute, both DMA engines, async DMA sometimes
/// left in flight at the template boundary (forcing fallback), syncs,
/// and a send/recv ring.
fn random_template(n_chips: usize, seed: u64) -> Vec<Program> {
    let mut programs = Vec::with_capacity(n_chips);
    for c in 0..n_chips {
        let mut p = Program::new();
        let mut state = seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..(next() % 7 + 1) {
            match next() % 5 {
                0 => p.push(Instr::compute(Kernel::gemv(
                    (next() % 256 + 1) as usize,
                    (next() % 256 + 1) as usize,
                ))),
                1 => p.push(Instr::Dma { path: MemPath::L2ToL1, bytes: next() % 100_000 }),
                2 => p.push(Instr::Dma { path: MemPath::L3ToL2, bytes: next() % 100_000 }),
                3 => {
                    let tag = mtp::sim::DmaTag(i as u32);
                    let path = if next() % 2 == 0 { MemPath::L3ToL2 } else { MemPath::L2ToL1 };
                    p.push(Instr::DmaAsync { path, bytes: next() % 500_000 + 1, tag });
                    if next() % 2 == 0 {
                        p.push(Instr::DmaWait(tag));
                    }
                }
                _ => p.push(Instr::Sync((next() % 3) as u32)),
            }
        }
        if n_chips > 1 {
            p.push(Instr::send((c + 1) % n_chips, c as u64, next() % 10_000 + 1));
            p.push(Instr::recv((c + n_chips - 1) % n_chips, ((c + n_chips - 1) % n_chips) as u64));
        }
        programs.push(p);
    }
    programs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Periodic == full on randomized model configurations: random
    /// architecture, chip count, mode, depth, link bandwidth, and L2
    /// budget (which moves the residency crossovers).
    #[test]
    fn prop_scheduled_models_lockstep(
        embed_i in 0usize..3,
        heads in prop::sample::select(vec![2usize, 4, 8]),
        kv_div in prop::sample::select(vec![1usize, 2]),
        ffn_mul in prop::sample::select(vec![1usize, 2, 4]),
        seq in prop::sample::select(vec![8usize, 32, 128]),
        chips in prop::sample::select(vec![1usize, 2, 4, 8]),
        prompt in prop::sample::select(vec![false, true]),
        n_blocks in 1usize..40,
        bw_pct in prop::sample::select(vec![25u32, 50, 100]),
        l2_fraction in prop::sample::select(vec![0.2f64, 0.75]),
    ) {
        let embed = [128usize, 256, 512][embed_i];
        prop_assume!(heads <= embed && embed.is_multiple_of(heads));
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.name = "randomized".to_owned();
        cfg.embed_dim = embed;
        cfg.n_heads = heads;
        cfg.n_kv_heads = heads / kv_div;
        cfg.ffn_dim = embed * ffn_mul;
        cfg.seq_len = seq;
        prop_assume!(cfg.validate().is_ok());
        let mode = if prompt { InferenceMode::Prompt } else { InferenceMode::Autoregressive };
        let mut chip = ChipSpec::siracusa();
        chip.link.bytes_per_cycle *= f64::from(bw_pct) / 100.0;
        chip.l2_usable_fraction = l2_fraction;
        prop_assume!(Scheduler::new(&cfg, chips, &chip).is_ok());
        let template = Scheduler::new(&cfg, chips, &chip).unwrap().block_programs(mode);
        let full_programs =
            Scheduler::new(&cfg, chips, &chip).unwrap().model_programs(mode, n_blocks).unwrap();
        let machine = Machine::homogeneous(chip, chips);
        let fast = machine.run_periodic(&template, n_blocks).unwrap();
        let full = machine.run(&full_programs).unwrap();
        prop_assert_eq!(fast, full);
    }

    /// Periodic == full on arbitrary raw templates, including ones that
    /// can never prove periodicity (in-flight DMA at the boundary,
    /// irregular send patterns): the fallback must keep exact equality.
    #[test]
    fn prop_raw_templates_lockstep(
        n_chips in 1usize..6,
        n_blocks in 1usize..30,
        seed in 0u64..10_000,
    ) {
        let template = random_template(n_chips, seed);
        let machine = Machine::homogeneous(ChipSpec::siracusa(), n_chips);
        let fast = machine.run_periodic(&template, n_blocks).unwrap();
        let full = machine.run(&concat_shifted(&template, n_blocks)).unwrap();
        prop_assert_eq!(fast, full);
    }
}
