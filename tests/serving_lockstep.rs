//! Exactness suite for the open-loop serving frontend (DESIGN.md §12),
//! in four proofs:
//!
//! 1. **Saturated lockstep** — with every request already queued at
//!    cycle 0, static gang scheduling under full-context billing must
//!    reproduce the PR 5 batch path *bit for bit*: the serving makespan
//!    is exactly the composed batch-pass makespans, every request's
//!    TTFT is the prefill-batch makespan, every TPOT is the
//!    decode-batch makespan.
//! 2. **Seed determinism** — the same grid on two cold engines and on a
//!    warm (cached) rerun produces byte-identical CSV and JSON rows.
//! 3. **KV isolation** — a proptest over random request mixes, arrival
//!    offsets, policies, and billing models replays the serving
//!    engine's slot-membership trace through the functional
//!    [`BatchDecoder`] and checks every request's greedy tokens are
//!    bit-identical to its solo run on a fresh decoder: continuous
//!    batching may change *when* a request computes, never *what*.
//! 4. **Load monotonicity** — raising the offered load under the same
//!    arrival seed never lowers p99 TTFT at fixed capacity (the SLO
//!    cliff only ever moves toward the caller).

use mtp::core::{BatchPolicy, Billing, DistributedSystem, SlotPhase};
use mtp::harness::serve::{percentile, ServeEngine, ServeGrid, ServeScenario};
use mtp::harness::sweep::ModelPreset;
use mtp::model::generate::generate_greedy;
use mtp::model::{
    ArrivalProcess, BatchDecoder, BatchWorkload, Decoder, Embedding, InferenceMode, ModelWeights,
    ServeRequest, ServeWorkload, TransformerConfig,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// 1. Saturated-arrival lockstep with the batch path.
// ---------------------------------------------------------------------

/// All requests at cycle 0 + static gang + full-context billing ==
/// composed `simulate_batch` passes, as exact u64 cycle counts, across
/// chip counts and batch sizes.
#[test]
fn saturated_static_serving_reproduces_batch_path() {
    let cfg = TransformerConfig::tiny_llama_42m();
    let (prompt_len, decode_len) = (16usize, 4usize);
    for n_chips in [2usize, 4, 8] {
        for batch in [2usize, 8] {
            let sys = DistributedSystem::paper_default(cfg.clone(), n_chips).unwrap();
            let requests = (0..batch)
                .map(|_| ServeRequest { prompt_len, decode_len, arrival_cycles: 0 })
                .collect();
            let workload = ServeWorkload::new(requests).unwrap();
            let report = sys
                .simulate_serve(&workload, BatchPolicy::Static { batch }, Billing::FullContext)
                .unwrap();

            // The PR 5 batch path, composed by hand: one prompt-mode
            // batch over the prompt length, then decode batches over the
            // model's full context.
            let prefill = sys
                .simulate_batch(
                    InferenceMode::Prompt,
                    &BatchWorkload::uniform(batch, prompt_len, 0),
                )
                .unwrap()
                .stats
                .makespan;
            let decode = sys
                .simulate_batch(
                    InferenceMode::Autoregressive,
                    &BatchWorkload::uniform(batch, cfg.seq_len, 0),
                )
                .unwrap()
                .stats
                .makespan;

            let expect = prefill + (decode_len as u64 - 1) * decode;
            assert_eq!(report.makespan, expect, "x{n_chips} b{batch}");
            assert_eq!(report.passes.len(), decode_len, "x{n_chips} b{batch}");
            assert_eq!(report.peak_concurrency(), batch);
            for (r, lat) in report.requests.iter().enumerate() {
                assert_eq!(lat.ttft(), prefill, "x{n_chips} b{batch} request {r}");
                assert_eq!(lat.tpot(), decode, "x{n_chips} b{batch} request {r}");
                assert_eq!(lat.e2e(), expect, "x{n_chips} b{batch} request {r}");
            }
        }
    }
}

/// In the saturated limit the two policies coincide: continuous
/// batching with `max_slots == batch` admits the same gang and runs the
/// same passes.
#[test]
fn saturated_continuous_equals_static_gang() {
    let cfg = TransformerConfig::tiny_llama_42m();
    let sys = DistributedSystem::paper_default(cfg, 4).unwrap();
    let requests =
        (0..6).map(|_| ServeRequest { prompt_len: 16, decode_len: 3, arrival_cycles: 0 }).collect();
    let workload = ServeWorkload::new(requests).unwrap();
    let st = sys
        .simulate_serve(&workload, BatchPolicy::Static { batch: 6 }, Billing::FullContext)
        .unwrap();
    let ct = sys
        .simulate_serve(&workload, BatchPolicy::Continuous { max_slots: 6 }, Billing::FullContext)
        .unwrap();
    assert_eq!(st, ct);
}

// ---------------------------------------------------------------------
// 2. Arrival-seed determinism, cold and warm, byte for byte.
// ---------------------------------------------------------------------

fn small_grid() -> ServeGrid {
    ServeGrid::paper_default()
        .with_chip_counts(vec![4])
        .with_arrivals(vec![
            ArrivalProcess::Poisson { rate_per_mcycle: 1.0 },
            ArrivalProcess::Bursty { rate_per_mcycle: 1.0, burst: 4 },
        ])
        .with_requests(12, 16, 3)
}

#[test]
fn serving_rows_are_seed_deterministic_cold_and_warm() {
    let grid = small_grid();
    let mut a = ServeEngine::new();
    let cold_a = a.run(&grid);
    let cold_b = ServeEngine::new().run(&grid);
    assert!(!cold_a.rows.is_empty());
    assert!(cold_a.skipped.is_empty());
    assert_eq!(cold_a.to_csv(), cold_b.to_csv(), "two cold engines diverged");
    assert_eq!(cold_a.to_json(), cold_b.to_json());

    // Warm rerun: everything from the cache, still the same bytes.
    let warm = a.run(&grid);
    assert_eq!(warm.unique_simulated, 0);
    assert_eq!(warm.cache_hits, cold_a.rows.len());
    assert_eq!(cold_a.to_csv(), warm.to_csv(), "warm rerun diverged from cold run");
    assert_eq!(cold_a.to_json(), warm.to_json());

    // The seed is load-bearing: a different seed draws different
    // arrivals, hence different latency records.
    let other = ServeEngine::new().run(&grid.with_seed(7));
    assert_ne!(cold_a.rows[0].report.requests, other.rows[0].report.requests);
}

// ---------------------------------------------------------------------
// 3. KV isolation under continuous batching (functional replay).
// ---------------------------------------------------------------------

fn tiny_cfg() -> TransformerConfig {
    let mut cfg = TransformerConfig::tiny_llama_42m();
    cfg.embed_dim = 16;
    cfg.ffn_dim = 24;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 2;
    cfg.n_layers = 2;
    cfg.seq_len = 12;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replays the serving engine's pass trace (which request computed
    /// in which pass, in what phase) through the functional batch
    /// decoder and checks every request's greedy output — and its
    /// KV-cache fill — is bit-identical to running that request alone.
    #[test]
    fn prop_served_requests_equal_solo_runs(
        n_requests in 1usize..5,
        seed in 0u64..400,
        weight_seed in 0u64..6,
        flags in 0u64..4,
        max_slots in 1usize..4,
    ) {
        let (continuous, per_request) = (flags & 1 != 0, flags & 2 != 0);
        let cfg = tiny_cfg();
        let weights = ModelWeights::seeded(&cfg, weight_seed);
        let emb = Embedding::seeded(&cfg, 20, weight_seed + 1);
        let sys = DistributedSystem::paper_default(cfg.clone(), 2).unwrap();

        // Deterministic per-case request mix from the seed.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        let mut mix: Vec<(ServeRequest, Vec<u32>)> = Vec::new();
        for _ in 0..n_requests {
            let prompt_len = next(4) as usize + 1;
            let decode_len = next(5) as usize;
            let arrival_cycles = next(4) * 40_000;
            let prompt = (0..prompt_len).map(|_| next(20) as u32).collect::<Vec<_>>();
            mix.push((ServeRequest { prompt_len, decode_len, arrival_cycles }, prompt));
        }
        // The workload constructor stable-sorts by arrival; pre-sort the
        // pairs the same way so request index r always owns prompts[r].
        mix.sort_by_key(|(spec, _)| spec.arrival_cycles);
        let prompts: Vec<Vec<u32>> = mix.iter().map(|(_, p)| p.clone()).collect();
        let workload = ServeWorkload::new(mix.into_iter().map(|(s, _)| s).collect()).unwrap();
        prop_assume!(workload.validate_for(&cfg).is_ok());

        let policy = if continuous {
            BatchPolicy::Continuous { max_slots }
        } else {
            BatchPolicy::Static { batch: max_slots }
        };
        let billing = if per_request { Billing::PerRequest } else { Billing::FullContext };
        let report = sys.simulate_serve(&workload, policy, billing).unwrap();

        // Replay the trace functionally: same joins, same interleaving.
        let n = workload.n_requests();
        let mut batch = BatchDecoder::new(cfg.clone(), weights.clone(), n);
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut last: Vec<Option<u32>> = vec![None; n];
        for pass in &report.passes {
            for &(r, phase) in &pass.slots {
                let spec = workload.requests()[r];
                match phase {
                    SlotPhase::Prefill => {
                        let mut hidden = None;
                        for &t in &prompts[r] {
                            let x = emb.embed(t).unwrap();
                            hidden = Some(batch.step(r, &x).unwrap());
                        }
                        if spec.decode_len >= 1 {
                            let tok = emb.greedy_next(&hidden.unwrap()).unwrap();
                            outputs[r].push(tok);
                            last[r] = Some(tok);
                        }
                    }
                    SlotPhase::Decode => {
                        let x = emb.embed(last[r].expect("decode before prefill")).unwrap();
                        let hidden = batch.step(r, &x).unwrap();
                        let tok = emb.greedy_next(&hidden).unwrap();
                        outputs[r].push(tok);
                        last[r] = Some(tok);
                    }
                }
            }
        }

        for r in 0..n {
            let spec = workload.requests()[r];
            // Trace sanity: exactly the passes the lifecycle implies.
            let appearances =
                report.passes.iter().flat_map(|p| &p.slots).filter(|(q, _)| *q == r).count();
            prop_assert_eq!(appearances, 1 + spec.decode_len.saturating_sub(1));
            prop_assert_eq!(outputs[r].len(), spec.decode_len);

            // Solo run on a fresh decoder: bit-identical tokens and
            // cache fill.
            let mut solo = Decoder::new(cfg.clone(), weights.clone());
            let alone = if spec.decode_len == 0 {
                for &t in &prompts[r] {
                    let x = emb.embed(t).unwrap();
                    solo.step(&x).unwrap();
                }
                Vec::new()
            } else {
                generate_greedy(&emb, &prompts[r], spec.decode_len, |x| solo.step(x)).unwrap()
            };
            prop_assert_eq!(&outputs[r], &alone, "request {} diverged from its solo run", r);
            // The serving trace never runs a pass for the final emitted
            // token (the request retires with it), so the replay caches
            // one position fewer than the solo driver, which always
            // steps its last token.
            prop_assert_eq!(batch.cached_len(r), spec.prompt_len + spec.decode_len.saturating_sub(1));
            if spec.decode_len >= 1 {
                prop_assert_eq!(solo.cached_len(), spec.prompt_len + spec.decode_len);
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. Load monotonicity: the SLO cliff only moves toward the caller.
// ---------------------------------------------------------------------

/// Under the same seed, a higher Poisson rate moves every arrival
/// earlier (rounded exponential gaps are monotone in the rate), so p99
/// TTFT at fixed capacity must be non-decreasing in the offered load.
#[test]
fn offered_load_up_means_p99_ttft_non_decreasing() {
    for policy in [BatchPolicy::Static { batch: 4 }, BatchPolicy::Continuous { max_slots: 4 }] {
        let mut prev = 0u64;
        for rate in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let scenario = ServeScenario {
                model: ModelPreset::TinyLlama,
                n_chips: 4,
                process: ArrivalProcess::Poisson { rate_per_mcycle: rate },
                policy,
                billing: Billing::FullContext,
                n_requests: 16,
                prompt_len: 16,
                decode_len: 2,
                seed: 42,
                faults: mtp::core::FaultProfile::none(),
            };
            let (report, _solo) = scenario.run().unwrap();
            let mut ttfts: Vec<u64> = report.requests.iter().map(|r| r.ttft()).collect();
            ttfts.sort_unstable();
            let p99 = percentile(&ttfts, 99);
            assert!(
                p99 >= prev,
                "{}: rate {rate}: p99 TTFT {p99} fell below {prev}",
                policy.label(),
            );
            prev = p99;
        }
    }
}
