#!/usr/bin/env bash
# CI perf-regression guard: runs the quick `mtp bench` profile and diffs
# it against the newest committed BENCH_*.json baseline.
#
#   scripts/bench_compare.sh                  compare against the newest
#                                             BENCH_*.json, tolerance 10x
#   scripts/bench_compare.sh BENCH_4.json     explicit baseline
#   TOLERANCE=25 scripts/bench_compare.sh     override the gate
#
# The tolerance is deliberately generous: quick-profile numbers on shared
# CI runners are noisy, and the gate exists to catch order-of-magnitude
# regressions (a hot path accidentally falling off its fast path), not to
# police percent-level drift. The committed baselines are measured with
# the full profile on a quiet host, which adds its own constant factor —
# both effects stay far inside a 10x gate.
#
# Since PR 5 the suite includes batch entries (batched simulator runs
# and the batched deep sweep), so this guard also catches the batching
# subsystem falling off its request-level periodicity fast path —
# BENCH_5.json is the first baseline carrying them; against older
# baselines they are reported as "not in baseline" and skipped.
#
# Since PR 6 the suite also includes the queued link-regime entries
# (sim/8chip_ar_block_qinf and sim/8chip_ar_block_q1m), guarding the
# affine hot path against the packet-level arbitration work: the affine
# entries must not slow down, and the queued entries bound the cost of
# the queue bookkeeping itself. BENCH_6.json is the first baseline
# carrying them.
#
# Since PR 8 the suite includes backend/dtype kernel entries (scalar
# GEMM, f16, int8, fused attention) and `--check` marks every row
# explicitly — `ok (within Nx)` or `REGRESSION` — so a pass is visibly
# a judgment on each entry, not an absence of output. Kernel entries
# run at a higher best-of-N since PR 8 to tame shared-runner noise.
# BENCH_8.json is the first baseline carrying the new entries; against
# older baselines they are reported as "not in baseline" and skipped.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-}"
if [ -z "$baseline" ]; then
  baseline=$(ls BENCH_*.json | sort -V | tail -1)
fi
tolerance="${TOLERANCE:-10}"

echo "== perf-regression guard: quick profile vs $baseline (gate ${tolerance}x) =="
cargo run --release --bin mtp -- bench --quick --compare "$baseline" --check "$tolerance"
