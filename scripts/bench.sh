#!/usr/bin/env bash
# Runs the repo's performance benchmarks.
#
#   scripts/bench.sh               full run: criterion micro-suite + the
#                                  `mtp bench` wall-clock suite, writing
#                                  bench-results.json in the repo root
#   scripts/bench.sh --quick       CI smoke profile: `mtp bench --quick`
#                                  only (criterion stays out of CI)
#   scripts/bench.sh --json FILE   override the JSON output path
#
# The `mtp bench` suite includes the multi-request batching entries
# (sim/8chip_ar_8blk_b8_* and sweep/deep_grid_batch4_cold_serial), so
# the batch axis is covered by every run of this script — the batched
# deep sweep is expected to land within ~2x of the single-request
# sweep/deep_grid_cold_serial (request-level periodicity, DESIGN.md §10).
#
# The committed BENCH_<pr>.json trajectory files are produced from these
# numbers — see the README's "Benchmarks" section for the format and
# DESIGN.md §8 for the methodology.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=""
json_out="bench-results.json"
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick="--quick"; shift ;;
    --json) json_out="$2"; shift 2 ;;
    *) echo "usage: scripts/bench.sh [--quick] [--json FILE]" >&2; exit 2 ;;
  esac
done

if [ -z "$quick" ]; then
  echo "== criterion micro-suite (kernels + sweep engine) =="
  cargo bench --bench kernels -- --bench
  cargo bench --bench sweep -- --bench
fi

echo "== mtp bench $quick =="
cargo run --release --bin mtp -- bench $quick --json "$json_out"
echo "wrote $json_out"
