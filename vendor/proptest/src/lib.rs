//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property
//! suites use — the `proptest!` macro with `#![proptest_config(...)]`,
//! integer-range and `prop::sample::select` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros — over a
//! fully deterministic runner:
//!
//! - Case seeds are derived from the test name and case index, so a given
//!   (test, case-count) pair explores the same inputs on every run and on
//!   every machine. CI runtime is therefore bounded and reproducible.
//! - Failure seeds persist: a failing case panics with a `cc 0x<seed>`
//!   line; appending that line to
//!   `proptest-regressions/<suite>/<test_name>.txt` (next to the crate's
//!   `Cargo.toml`; `<suite>` is the declaring source file's stem) makes
//!   every future run replay it first, exactly like upstream proptest's
//!   regression files.
//! - `PROPTEST_CASES` in the environment scales the case count of tests
//!   that use `ProptestConfig::default()`; explicit `with_cases(n)` pins
//!   it regardless of the environment.
//!
//! No shrinking is performed: seeds, not values, are what persists, and
//! the suites' generators are narrow enough that raw failing cases are
//! directly debuggable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::path::Path;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property (rejected cases count toward
    /// this bound so runtime stays bounded even with aggressive
    /// `prop_assume!` filters).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases — pinned, ignoring the
    /// `PROPTEST_CASES` environment variable.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via the `PROPTEST_CASES` environment
    /// variable (like upstream proptest).
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was filtered out by `prop_assume!`; it is skipped, not
    /// failed.
    Reject(String),
    /// The property does not hold for this case.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (skip) outcome.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure outcome.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Per-case result type used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The per-case random source handed to strategies. SplitMix64 over the
/// case seed: deterministic and platform-independent.
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
    seed: u64,
}

impl TestRunner {
    /// A runner for one case seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRunner { state: seed, seed }
    }

    /// The case seed this runner was created from (what regression files
    /// store).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        self.next_u64() % bound
    }
}

/// A value generator, mirroring (a deterministic, non-shrinking subset of)
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value for the current case.
    fn pick(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + runner.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return runner.next_u64() as $t;
                }
                lo + runner.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategies!(usize, u64, u32, u16, u8);

/// Strategy modules, mirroring the `prop::` namespace of the upstream
/// prelude.
pub mod sample {
    use super::{Strategy, TestRunner};

    /// Uniform choice among a fixed set of options; see [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly selects one of `options` per case, mirroring
    /// `proptest::sample::select`.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, runner: &mut TestRunner) -> T {
            let i = runner.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// FNV-1a over the test name: a stable, platform-independent base seed.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The regression file for one property, relative to the crate root:
/// `proptest-regressions/<suite>/<test_name>.txt`, where `<suite>` is the
/// stem of the source file that declared the test (e.g. `invariants` for
/// `tests/invariants.rs`). Keying by suite as well as test name keeps two
/// same-named properties in different suites of one package from sharing
/// seeds — mirroring upstream proptest's source-path keying.
fn regression_rel_path(source_file: &str, test_name: &str) -> String {
    let suite =
        Path::new(source_file).file_stem().and_then(|s| s.to_str()).unwrap_or("unknown_suite");
    format!("proptest-regressions/{suite}/{test_name}.txt")
}

/// Loads persisted failure seeds for one property. Lines look like
/// `cc 0xdeadbeefdeadbeef` (comments after `#`, blank lines and `#`-only
/// lines ignored).
fn regression_seeds(manifest_dir: &str, rel_path: &str) -> Vec<u64> {
    let path = Path::new(manifest_dir).join(rel_path);
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        let Some(hex) = line.strip_prefix("cc 0x") else {
            continue;
        };
        if let Ok(seed) = u64::from_str_radix(hex.trim(), 16) {
            seeds.push(seed);
        }
    }
    seeds
}

/// Drives one property: replays persisted regression seeds first, then
/// runs `config.cases` fresh deterministic cases. Panics (failing the
/// surrounding `#[test]`) on the first failing case, printing the seed in
/// regression-file syntax.
///
/// This is the expansion target of the [`proptest!`] macro; it is public
/// so the macro can reach it, not intended to be called directly.
pub fn run_proptest(
    config: &ProptestConfig,
    test_name: &str,
    source_file: &str,
    manifest_dir: &str,
    body: &mut dyn FnMut(&mut TestRunner) -> TestCaseResult,
) {
    let rel_path = regression_rel_path(source_file, test_name);
    let mut failures = Vec::new();
    let mut rejected = 0u32;
    let mut run_one = |seed: u64, origin: &str, failures: &mut Vec<String>, rejected: &mut u32| {
        let mut runner = TestRunner::from_seed(seed);
        match body(&mut runner) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => *rejected += 1,
            Err(TestCaseError::Fail(msg)) => failures.push(format!(
                "{origin} case failed: {msg}\n  persist it: echo 'cc {seed:#018x}' >> {rel_path}"
            )),
        }
    };

    for seed in regression_seeds(manifest_dir, &rel_path) {
        run_one(seed, "persisted regression", &mut failures, &mut rejected);
    }
    let base = fnv1a(test_name);
    for case in 0..config.cases {
        // Re-randomize the per-case seed through the runner's own mixer so
        // consecutive cases are decorrelated.
        let seed = TestRunner::from_seed(base.wrapping_add(u64::from(case))).next_u64();
        run_one(seed, "generated", &mut failures, &mut rejected);
        if !failures.is_empty() {
            break;
        }
    }
    assert!(failures.is_empty(), "property `{test_name}`: {}", failures.join("\n"));
    assert!(
        rejected < config.cases.max(1),
        "property `{test_name}`: every case was rejected by prop_assume! — generator and filter disagree"
    );
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies with `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_proptest(
                &config,
                stringify!($name),
                file!(),
                env!("CARGO_MANIFEST_DIR"),
                &mut |__proptest_runner: &mut $crate::TestRunner| {
                    $(let $arg = $crate::Strategy::pick(&($strategy), __proptest_runner);)*
                    $body
                    Ok(())
                },
            );
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the current case when `condition` is false, mirroring
/// `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when `condition` is false, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!("assertion failed: ", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the operands differ, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r
            )));
        }
    }};
}

/// The common import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRunner,
    };

    /// Strategy namespace (`prop::sample::select(...)`), mirroring the
    /// upstream prelude's `prop` module.
    pub mod prop {
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in 5u64..=9) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((5..=9).contains(&b), "b={b}");
        }

        #[test]
        fn select_draws_from_options(x in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(x == 2 || x == 4 || x == 8);
        }

        #[test]
        fn assume_filters_cases(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_proptest(
                &ProptestConfig::with_cases(16),
                "determinism_probe",
                file!(),
                env!("CARGO_MANIFEST_DIR"),
                &mut |runner| {
                    out.push(runner.next_u64());
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "cc 0x")]
    fn failures_print_persistable_seed() {
        crate::run_proptest(
            &ProptestConfig::with_cases(1),
            "always_fails_probe",
            file!(),
            env!("CARGO_MANIFEST_DIR"),
            &mut |_| Err(TestCaseError::fail("nope")),
        );
    }

    #[test]
    fn regression_files_are_keyed_by_suite_and_test() {
        assert_eq!(
            crate::regression_rel_path("tests/invariants.rs", "prop_partition_is_exact"),
            "proptest-regressions/invariants/prop_partition_is_exact.txt"
        );
    }

    #[test]
    fn regression_file_seeds_are_replayed() {
        // vendor/proptest/proptest-regressions/lib/replay_probe.txt pins
        // one seed; the body records what it sees.
        let mut seen = Vec::new();
        crate::run_proptest(
            &ProptestConfig::with_cases(0),
            "replay_probe",
            file!(),
            env!("CARGO_MANIFEST_DIR"),
            &mut |runner| {
                seen.push(runner.seed());
                Ok(())
            },
        );
        assert_eq!(seen, vec![0x00ab_cdef_0123_4567]);
    }
}
