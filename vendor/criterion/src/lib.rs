//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace's bench
//! targets use — `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `Bencher::iter`, `sample_size` — over a plain
//! wall-clock timer. Reported numbers are min/mean over `sample_size`
//! samples of one iteration each; there is no outlier analysis or HTML
//! report, but the bench *targets* compile and run identically, so they
//! cannot rot while the real crate is unavailable offline.
//!
//! Mode selection follows cargo's conventions: `cargo bench` passes
//! `--bench`, which enables timed runs; without it (e.g. a bench target
//! compiled and executed by `cargo test --benches`) each benchmark body
//! runs exactly once as a smoke test so suites stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { bench_mode: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// Applies command-line configuration, mirroring
    /// `Criterion::configure_from_args` (only `--bench` is meaningful for
    /// this stand-in).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let bench_mode = self.bench_mode;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10, bench_mode }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named collection of benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    bench_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };
        let samples = if self.bench_mode { self.sample_size } else { 1 };
        let mut durations = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut bencher);
            if bencher.iters > 0 {
                durations.push(bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX));
            }
        }
        if self.bench_mode {
            let min = durations.iter().min().copied().unwrap_or_default();
            let mean = if durations.is_empty() {
                Duration::ZERO
            } else {
                durations.iter().sum::<Duration>() / u32::try_from(durations.len()).unwrap_or(1)
            };
            println!(
                "bench: {full:<60} min {min:>12.3?}   mean {mean:>12.3?}   ({samples} samples)"
            );
        } else {
            println!("bench (smoke, pass --bench to time): {full}");
        }
        self
    }

    /// Ends the group, mirroring `BenchmarkGroup::finish`.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`; one call per sample in this
    /// stand-in (criterion's auto-calibrated batching is not reproduced).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-target entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion { bench_mode: false };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(50).bench_function("probe", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_collects_sample_size_samples() {
        let mut c = Criterion { bench_mode: true };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(7).bench_function("probe", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 7);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
