//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The workspace's `serde` stub blanket-implements its marker traits, so
//! these derives only need to *accept* the attribute grammar — they expand
//! to nothing. Swapping in the real `serde`/`serde_derive` requires no
//! source changes in the workspace.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helper attributes)
/// and expands to nothing; the `serde` stub's blanket impl provides the
/// trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helper
/// attributes) and expands to nothing; the `serde` stub's blanket impl
/// provides the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
