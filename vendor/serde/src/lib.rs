//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types so downstream users can persist reports and traces, but nothing
//! in-tree serializes at runtime and the build environment has no network
//! access to fetch the real crate. This stub keeps the *type-level*
//! contract — the trait names, the derive attribute grammar, and the
//! `#[serde(...)]` helper attribute — while implementing the traits as
//! blanket markers. Replacing it with the real `serde` is a one-line
//! `Cargo.toml` change and requires no source edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type; the derive macro expands to
/// nothing.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
///
/// Blanket-implemented for every type; the derive macro expands to
/// nothing.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module path.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module path.
pub mod ser {
    pub use super::Serialize;
}
