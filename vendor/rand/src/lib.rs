//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! The workspace uses randomness in exactly one way: *seeded, reproducible*
//! weight/input generation via `StdRng::seed_from_u64` + `rng.gen::<f32>()`.
//! This stub provides that surface over a SplitMix64 generator —
//! deterministic, high-quality for test-data purposes, and dependency-free.
//!
//! Note the stream differs from the real `rand`'s ChaCha-based `StdRng`,
//! which is fine here: no golden value in the repo depends on the exact
//! stream, only on determinism (same seed ⇒ same values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform-word source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's word stream
/// (the stand-in for sampling with the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T` (e.g. `rng.gen::<f32>()` for a
    /// uniform float in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: a SplitMix64
    /// stream (Steele et al., "Fast splittable pseudorandom number
    /// generators").
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<f32> = (0..8).map(|_| a.gen::<f32>()).collect();
        let ys: Vec<f32> = (0..8).map(|_| b.gen::<f32>()).collect();
        let zs: Vec<f32> = (0..8).map(|_| c.gen::<f32>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f32 = (0..n).map(|_| rng.gen::<f32>()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
