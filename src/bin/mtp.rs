//! `mtp` — command-line front end for the distributed-inference simulator.
//!
//! ```text
//! mtp simulate --model tinyllama --chips 8 --mode ar [--blocks N] [--trace]
//! mtp figures      # regenerate every paper figure/table
//! mtp headline     # paper-vs-measured headline numbers
//! mtp ablation     # design-choice ablations
//! mtp table1       # strategy comparison (ours vs baselines)
//! ```

use mtp::core::{schedule::Scheduler, DistributedSystem};
use mtp::harness::{ablation, advisor, fig4, fig5, fig6, headline, table1};
use mtp::model::{InferenceMode, TransformerConfig};
use mtp::sim::{ChipSpec, Machine};
use std::process::ExitCode;

const USAGE: &str = "\
mtp — distributed Transformer inference on low-power MCU networks

USAGE:
    mtp simulate [--model NAME] [--chips N] [--mode ar|prompt] [--blocks N]
                 [--trace] [--chrome-trace FILE]
    mtp advise   [--model NAME] [--mode ar|prompt] [--latency-ms X] [--energy-mj X]
                 [--max-chips N]
    mtp figures
    mtp headline
    mtp ablation
    mtp table1 [--chips N]

MODELS:
    tinyllama       TinyLlama-42M (default; S=128 ar / S=16 prompt)
    tinyllama-64h   the scalability-study variant (64 heads)
    tinyllama-gqaK  grouped-query variant with K kv heads (K in 1,2,4,8)
    mobilebert      MobileBERT encoder (S=268, prompt mode only)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("advise") => advise(&args[1..]),
        Some("figures") => figures(),
        Some("headline") => headline_cmd(),
        Some("ablation") => ablation_cmd(),
        Some("table1") => table1_cmd(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_model(name: &str, mode: InferenceMode) -> Result<TransformerConfig, String> {
    match name {
        "tinyllama" => Ok(match mode {
            InferenceMode::Autoregressive => TransformerConfig::tiny_llama_42m(),
            InferenceMode::Prompt => TransformerConfig::tiny_llama_42m().with_seq_len(16),
        }),
        "tinyllama-64h" => Ok(match mode {
            InferenceMode::Autoregressive => TransformerConfig::tiny_llama_scaled_64h(),
            InferenceMode::Prompt => TransformerConfig::tiny_llama_scaled_64h().with_seq_len(16),
        }),
        "mobilebert" => Ok(TransformerConfig::mobile_bert()),
        other => {
            if let Some(k) = other.strip_prefix("tinyllama-gqa") {
                let kv: usize = k.parse().map_err(|_| format!("bad kv-head count in `{other}`"))?;
                if kv == 0 || 8 % kv != 0 {
                    return Err(format!("kv heads must divide 8, got {kv}"));
                }
                let cfg = TransformerConfig::tiny_llama_gqa(kv);
                return Ok(match mode {
                    InferenceMode::Autoregressive => cfg,
                    InferenceMode::Prompt => cfg.with_seq_len(16),
                });
            }
            Err(format!(
                "unknown model `{other}` (tinyllama|tinyllama-64h|tinyllama-gqaK|mobilebert)"
            ))
        }
    }
}

fn simulate(args: &[String]) -> CliResult {
    let mode = match flag_value(args, "--mode").unwrap_or("ar") {
        "ar" | "autoregressive" => InferenceMode::Autoregressive,
        "prompt" => InferenceMode::Prompt,
        other => return Err(format!("unknown mode `{other}` (ar|prompt)").into()),
    };
    let model = flag_value(args, "--model").unwrap_or("tinyllama");
    let cfg = parse_model(model, mode)?;
    let chips: usize = flag_value(args, "--chips").unwrap_or("8").parse()?;
    let blocks: usize = flag_value(args, "--blocks").unwrap_or("1").parse()?;

    let sys = DistributedSystem::paper_default(cfg.clone(), chips)?;
    let report = sys.simulate_blocks(mode, blocks)?;
    println!("{report}");
    let b = report.breakdown();
    println!(
        "breakdown (critical chip): compute {} | L3<->L2 {} | L2<->L1 {} | C2C {} | idle {}",
        b.compute, b.dma_l3_l2, b.dma_l2_l1, b.c2c, b.idle
    );
    if chips > 1 {
        let single =
            DistributedSystem::paper_default(cfg.clone(), 1)?.simulate_blocks(mode, blocks)?;
        println!(
            "vs single chip: speedup {:.1}x, EDP improvement {:.1}x",
            report.speedup_over(&single),
            report.edp_improvement_over(&single)
        );
    }
    let want_text_trace = has_flag(args, "--trace");
    let chrome_path = flag_value(args, "--chrome-trace");
    if want_text_trace || chrome_path.is_some() {
        let chip = ChipSpec::siracusa();
        let mut scheduler = Scheduler::new(&cfg, chips, &chip)?;
        let programs = scheduler.model_programs(mode, 1)?;
        let machine = Machine::homogeneous(chip, chips);
        let (_, trace) = machine.run_traced(&programs)?;
        if want_text_trace {
            println!("\nexecution trace (1 block):\n{}", trace.render());
        }
        if let Some(path) = chrome_path {
            std::fs::write(path, trace.to_chrome_json())?;
            println!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
        }
    }
    Ok(())
}

fn advise(args: &[String]) -> CliResult {
    let mode = match flag_value(args, "--mode").unwrap_or("ar") {
        "ar" | "autoregressive" => InferenceMode::Autoregressive,
        "prompt" => InferenceMode::Prompt,
        other => return Err(format!("unknown mode `{other}` (ar|prompt)").into()),
    };
    let model = flag_value(args, "--model").unwrap_or("tinyllama");
    let cfg = parse_model(model, mode)?;
    let constraints = advisor::Constraints {
        max_latency_ms: flag_value(args, "--latency-ms").map(str::parse).transpose()?,
        max_energy_mj: flag_value(args, "--energy-mj").map(str::parse).transpose()?,
    };
    let max_chips: usize = flag_value(args, "--max-chips").unwrap_or("64").parse()?;
    let advice = advisor::advise(&cfg, mode, constraints, max_chips)?;
    print!("{}", advisor::render(&advice, &constraints));
    Ok(())
}

fn figures() -> CliResult {
    println!("{}", fig4::render("Fig 4(a): TinyLlama autoregressive (S=128)", &fig4::fig4a()?));
    println!("{}", fig4::render("Fig 4(b): TinyLlama prompt (S=16)", &fig4::fig4b()?));
    println!("{}", fig4::render("Fig 4(c): MobileBERT (S=268)", &fig4::fig4c()?));
    for panel in fig5::run()? {
        println!("{}", fig5::render(&panel));
    }
    println!("{}", fig6::render(&fig6::run()?));
    println!("{}", table1::render(&table1::run(4, InferenceMode::Autoregressive)?));
    println!("{}", headline::render(&headline::run()?));
    Ok(())
}

fn headline_cmd() -> CliResult {
    println!("{}", headline::render(&headline::run()?));
    Ok(())
}

fn ablation_cmd() -> CliResult {
    println!("{}", ablation::render_all()?);
    Ok(())
}

fn table1_cmd(args: &[String]) -> CliResult {
    let chips: usize = flag_value(args, "--chips").unwrap_or("4").parse()?;
    println!("{}", table1::render(&table1::run(chips, InferenceMode::Autoregressive)?));
    Ok(())
}
