//! `mtp` — command-line front end for the distributed-inference simulator.
//!
//! ```text
//! mtp simulate --model tinyllama --chips 8 --mode ar [--blocks N] [--trace]
//! mtp sweep        # declarative scenario grid, parallel + cached
//! mtp figures      # regenerate every paper figure/table
//! mtp headline     # paper-vs-measured headline numbers
//! mtp ablation     # design-choice ablations
//! mtp table1       # strategy comparison (ours vs baselines)
//! ```

use mtp::core::{schedule::Scheduler, DistributedSystem};
use mtp::core::{BatchPolicy, Billing, FailPolicy, FaultProfile};
use mtp::harness::serve::{ServeEngine, ServeGrid};
use mtp::harness::sweep::{
    CostSourceKind, ModelPreset, PlacementPolicy, Span, SweepEngine, SweepGrid, TopologySpec,
};
use mtp::harness::{ablation, advisor, bench, fig4, fig5, fig6, headline, table1};
use mtp::model::{ArrivalProcess, InferenceMode, TransformerConfig};
use mtp::sim::{ChipSpec, FaultPlan, LinkRegime, Machine};
use std::process::ExitCode;

const USAGE: &str = "\
mtp — distributed Transformer inference on low-power MCU networks

USAGE:
    mtp simulate [--model NAME] [--chips N] [--mode ar|prompt] [--blocks N]
                 [--trace] [--chrome-trace FILE]
    mtp sweep    [--deep | --batch] [--models A,B] [--modes ar,prompt]
                 [--chips 1,2,4,8] [--topologies hier4,flat]
                 [--placements auto,streamed] [--link-bw 100,50]
                 [--link-regime affine,queued:65536,...] [--span block|model]
                 [--batches 1,4,16] [--threads N]
                 [--faults none;failstop:0:50000] [--fail-policy abort|restart|spare]
                 [--cost-source analytic,calibrated]
                 [--csv FILE] [--json FILE] [--stream] [--serial]
                 [--compare-serial]
    mtp serve    [--models A,B] [--chips 4,8] [--arrivals poisson:0.5;bursty:2:8]
                 [--policies static:8,continuous:8] [--billing full,per-request]
                 [--requests N] [--prompt-len P] [--decode-len D] [--seed S]
                 [--faults none,fail:25:3:500:64] [--csv FILE] [--json FILE]
    mtp advise   [--model NAME] [--mode ar|prompt] [--latency-ms X] [--energy-mj X]
                 [--max-chips N] [--chips 1,2,4,8] [--topologies hier4,flat]
                 [--placements auto,streamed] [--link-bw 25,50..100:5]
                 [--csv FILE] [--json FILE]
    mtp figures
    mtp headline
    mtp ablation
    mtp table1 [--chips N]
    mtp bench  [--quick] [--json FILE] [--compare BENCH_N.json] [--check TOL]
               [--calibrate]

MODELS:
    tinyllama       TinyLlama-42M (default; S=128 ar / S=16 prompt)
    tinyllama-64h   the scalability-study variant (64 heads)
    tinyllama-gqaK  grouped-query variant with K kv heads (K in 1,2,4,8)
    tinyllama-dN    depth-scaled TinyLlama with N layers (e.g. -d96)
    mobilebert      MobileBERT encoder (S=268, prompt mode only)
    mobilebert-dN   depth-scaled MobileBERT with N layers

BENCH:
    `mtp bench` times the hot paths (blocked matmul kernels, the 8-chip
    simulator block and its 96-block deep pass — full vs. periodic
    steady-state extrapolation — plus the cold-cache default and deep
    sweeps) as best-of-N wall clock and prints one line per benchmark;
    --json also writes the machine-readable report (the BENCH_*.json
    format, see the README's Benchmarks section). --quick is the CI
    smoke profile. --compare diffs the run against a committed
    BENCH_*.json baseline as a per-bench speedup table, and --check TOL
    exits non-zero when any benchmark runs more than TOL times slower
    than that baseline, marking every row `ok (within TOLx)` or
    `REGRESSION` (the CI perf-regression guard,
    scripts/bench_compare.sh). Since PR 8 the kernel section also covers
    the scalar-backend, f16, int8, and fused-attention paths;
    --calibrate instead times the real kernels and fits the measured
    cost model (mtp_kernels::CalibratedCostModel) at the Siracusa clock.

SWEEP:
    With no flags, `mtp sweep` runs the default paper grid: all three
    workloads in both modes x chips 1-64 x {hier4, flat} topologies
    (>= 48 valid scenarios; invalid chip counts are skipped with a
    reason). Grid axes multiply, duplicates are answered from the
    scenario cache, and unique points run on one worker thread per CPU.
    --deep starts from the deep-model grid instead: 96- and 192-block
    full-model passes x chips 1-8 x {100%, 50%} link bandwidth, made
    cheap by periodic steady-state extrapolation and the shared
    compiled-schedule cache (other grid flags still override its axes).
    --batch starts from the multi-request grid: full-model passes x
    chips 1-8 x uniform batches of {1, 4, 16} interleaved requests per
    block — request-level periodicity reuses the single-request
    template, so batched sweeps cost about the same as batch=1 ones.
    --batches overrides the batch-size axis on any grid. --link-regime
    sets the link timing-model axis: `affine` (the paper's model,
    default), `queued[:BYTES]` (per-receiver ingress queue, infinite
    buffer when BYTES is omitted), `droptail:BYTES[:NACK]` (finite
    queue that drops and NACK-retransmits instead of stalling), and
    `lossy:PERMILLE[:NACK]` (deterministic per-packet loss with
    go-back-N retransmission). Non-affine rows tag the link column as
    `pct@regime`, e.g. `100@q65536`. --stream writes rows one by one
    with flat memory (CSV to --csv FILE or stdout; with --json FILE,
    the same streamed bytes as the materialized JSON array) instead of
    building the result table — the mode for grids far beyond what a
    table is useful for.

SERVE:
    `mtp serve` runs the open-loop serving study: requests arrive on
    their own clock, join the fleet's batch when the admission policy
    lets them, decode token by token, and leave. Arrival processes are
    seeded and replayable — `poisson:RATE` and `bursty:RATE:BURST`
    (RATE in requests per megacycle), or `trace:C1,C2,...` (explicit
    arrival cycles). --arrivals separates specs with `;` (trace specs
    embed commas). Policies: `static:BATCH` gang-schedules (a batch
    drains fully before the next is admitted); `continuous:SLOTS`
    fills free slots at every pass boundary. Billing: `full` charges
    every decode step the model's full context (the saturated batch
    convention, bit-identical to the batch path in the saturated
    limit); `per-request` charges prompt_len + decoded tokens. Each
    grid point reports per-request TTFT/TPOT percentiles (p50/p95/p99),
    SLO attainment (TTFT within 3x the unloaded solo prefill), and
    goodput (within-SLO completions per second) — sweep --arrivals to
    trace the goodput-vs-offered-load curve and the SLO cliff. Output
    is deterministic: same seed, same rows, byte for byte.

FAULTS:
    Both studies take a seeded, replayable fault axis; at a fixed seed
    every faulted run is byte-deterministic, and the default `none`
    plans leave fault-free outputs byte-identical to earlier versions.
    `mtp sweep --faults` takes `;`-separated chip-level fault plans —
    `none`, `failstop:CHIP:AT`, `stall:CHIP:AT:DUR`,
    `slow:CHIP:FROM:DUR:PCT` (kernels stretched to PCT% of nominal
    duration, PCT > 100), `flap:CHIP:FROM:DUR:PCT` (sends stretched
    likewise), explicit events joined with `+`, or
    `seeded:SEED:COUNT[:HORIZON]` for a reproducible random plan. --fail-policy picks the fail-stop
    response: `abort` (the row becomes a typed skip), `restart` (redo
    the in-flight block), or `spare` (migrate to a cold spare chip).
    Faulted rows tag the span column as `span#plan` (plus `!policy`
    when not abort) and add fault cycle counters to the JSON sink.
    `mtp serve --faults` takes `,`-separated request-level profiles:
    `none` or `fail:PERMILLE[:RETRIES[:TIMEOUT_KCYC[:QCAP]]]` —
    per-attempt completion failures with seeded retry draws, a
    per-request deadline in kilocycles from arrival, and an
    admission-queue cap that sheds newest-first. Faulted serving rows
    report availability, retries, sheds, timeouts, and failures next
    to the latency percentiles (percentiles sample completed requests
    only).

COST SOURCE:
    `mtp sweep --cost-source calibrated` swaps the analytic kernel cost
    model for the measured one (`mtp bench --calibrate` fitted at the
    Siracusa clock) as a sweep axis; calibrated rows tag the model
    column as `model@cal`. The default `analytic` keeps published
    outputs reproducible — calibrated timings depend on the host.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("sweep") => sweep_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("advise") => advise(&args[1..]),
        Some("figures") => figures(),
        Some("headline") => headline_cmd(),
        Some("ablation") => ablation_cmd(),
        Some("table1") => table1_cmd(&args[1..]),
        Some("bench") => bench_cmd(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_model(name: &str, mode: InferenceMode) -> Result<TransformerConfig, String> {
    Ok(ModelPreset::parse(name)?.config(mode))
}

fn parse_mode(name: &str) -> Result<InferenceMode, String> {
    match name {
        "ar" | "autoregressive" => Ok(InferenceMode::Autoregressive),
        "prompt" => Ok(InferenceMode::Prompt),
        other => Err(format!("unknown mode `{other}` (ar|prompt)")),
    }
}

/// Splits a comma-separated flag value (`--chips 1,2,4`) into items.
fn list_flag<'a>(args: &'a [String], name: &str) -> Option<Vec<&'a str>> {
    flag_value(args, name).map(|v| v.split(',').filter(|s| !s.is_empty()).collect())
}

fn simulate(args: &[String]) -> CliResult {
    let mode = parse_mode(flag_value(args, "--mode").unwrap_or("ar"))?;
    let model = flag_value(args, "--model").unwrap_or("tinyllama");
    let cfg = parse_model(model, mode)?;
    let chips: usize = flag_value(args, "--chips").unwrap_or("8").parse()?;
    let blocks: usize = flag_value(args, "--blocks").unwrap_or("1").parse()?;

    let sys = DistributedSystem::paper_default(cfg.clone(), chips)?;
    let report = sys.simulate_blocks(mode, blocks)?;
    println!("{report}");
    let b = report.breakdown();
    println!(
        "breakdown (critical chip): compute {} | L3<->L2 {} | L2<->L1 {} | C2C {} | idle {}",
        b.compute, b.dma_l3_l2, b.dma_l2_l1, b.c2c, b.idle
    );
    if chips > 1 {
        let single =
            DistributedSystem::paper_default(cfg.clone(), 1)?.simulate_blocks(mode, blocks)?;
        println!(
            "vs single chip: speedup {:.1}x, EDP improvement {:.1}x",
            report.speedup_over(&single),
            report.edp_improvement_over(&single)
        );
    }
    let want_text_trace = has_flag(args, "--trace");
    let chrome_path = flag_value(args, "--chrome-trace");
    if want_text_trace || chrome_path.is_some() {
        let chip = ChipSpec::siracusa();
        let mut scheduler = Scheduler::new(&cfg, chips, &chip)?;
        let programs = scheduler.model_programs(mode, 1)?;
        let machine = Machine::homogeneous(chip, chips);
        let (_, trace) = machine.run_traced(&programs)?;
        if want_text_trace {
            println!("\nexecution trace (1 block):\n{}", trace.render());
        }
        if let Some(path) = chrome_path {
            std::fs::write(path, trace.to_chrome_json())?;
            println!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
        }
    }
    Ok(())
}

/// Builds the sweep grid from CLI flags: explicit `--models`/`--modes`
/// cross-multiply; with neither given, the default paper grid's
/// workload pairs are used (MobileBERT paired with prompt mode only).
fn build_sweep_grid(args: &[String]) -> Result<SweepGrid, String> {
    let models = list_flag(args, "--models");
    let modes = list_flag(args, "--modes");
    let deep = has_flag(args, "--deep");
    let batch = has_flag(args, "--batch");
    if deep && batch {
        return Err("--deep and --batch are mutually exclusive base grids \
                    (use --deep --batches N,M for a batched deep sweep)"
            .to_owned());
    }
    let mut grid = if deep {
        SweepGrid::deep_default()
    } else if batch {
        SweepGrid::batch_default()
    } else {
        SweepGrid::paper_default()
    };
    if models.is_some() || modes.is_some() {
        // With `--modes` but no `--models` (or vice versa), the omitted
        // axis defaults to the active grid's own model vocabulary, so
        // `--deep --modes ar` still sweeps the deep presets.
        let default_models = if deep {
            vec!["tinyllama-d96", "tinyllama-d192", "mobilebert-d96"]
        } else if batch {
            vec!["tinyllama", "mobilebert"]
        } else {
            vec!["tinyllama", "tinyllama-64h", "mobilebert"]
        };
        let presets: Vec<ModelPreset> = models
            .unwrap_or(default_models)
            .into_iter()
            .map(ModelPreset::parse)
            .collect::<Result<_, _>>()?;
        let modes: Vec<InferenceMode> = modes
            .unwrap_or_else(|| vec!["ar", "prompt"])
            .into_iter()
            .map(parse_mode)
            .collect::<Result<_, _>>()?;
        grid.workloads =
            presets.iter().flat_map(|&p| modes.iter().map(move |&m| (p.config(m), m))).collect();
    }
    if let Some(chips) = list_flag(args, "--chips") {
        grid.chip_counts = chips
            .into_iter()
            .map(|c| c.parse::<usize>().map_err(|_| format!("bad chip count `{c}`")))
            .collect::<Result<_, _>>()?;
    }
    if let Some(topologies) = list_flag(args, "--topologies") {
        grid.topologies =
            topologies.into_iter().map(TopologySpec::parse).collect::<Result<_, _>>()?;
    }
    if let Some(placements) = list_flag(args, "--placements") {
        grid.placements =
            placements.into_iter().map(PlacementPolicy::parse).collect::<Result<_, _>>()?;
    }
    if let Some(bws) = list_flag(args, "--link-bw") {
        grid.link_bw_pcts = bws
            .into_iter()
            .map(|b| match b.parse::<u32>() {
                Ok(pct) if pct > 0 => Ok(pct),
                _ => Err(format!("bad link bandwidth percentage `{b}`")),
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(regimes) = list_flag(args, "--link-regime") {
        grid.link_regimes = regimes.into_iter().map(LinkRegime::parse).collect::<Result<_, _>>()?;
    }
    if let Some(span) = flag_value(args, "--span") {
        grid = grid.with_span(Span::parse(span)?);
    }
    if let Some(batches) = list_flag(args, "--batches") {
        grid.batch_sizes = batches
            .into_iter()
            .map(|b| match b.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("bad batch size `{b}` (need a positive integer)")),
            })
            .collect::<Result<_, _>>()?;
    }
    // Fault plans separate with `;` — explicit plans embed `+`-joined
    // `kind:chip:...` events whose spellings must keep their colons.
    if let Some(faults) = list_flag_semicolon(args, "--faults") {
        grid.fault_plans = faults.into_iter().map(FaultPlan::parse).collect::<Result<_, _>>()?;
    }
    if let Some(policy) = flag_value(args, "--fail-policy") {
        grid.fail_policy = FailPolicy::parse(policy)?;
    }
    if let Some(sources) = list_flag(args, "--cost-source") {
        grid.cost_sources =
            sources.into_iter().map(CostSourceKind::parse).collect::<Result<_, _>>()?;
    }
    if grid.is_empty() {
        return Err("the grid is empty (every axis needs at least one value)".to_owned());
    }
    Ok(grid)
}

fn sweep_cmd(args: &[String]) -> CliResult {
    let grid = build_sweep_grid(args)?;
    let engine = if has_flag(args, "--serial") {
        SweepEngine::serial()
    } else if let Some(threads) = flag_value(args, "--threads") {
        SweepEngine::with_threads(threads.parse()?)
    } else {
        SweepEngine::new()
    };

    if has_flag(args, "--stream") {
        // Row-streaming mode: flat memory, no result table. One sink at
        // a time (each sink consumes the rows as they are produced).
        if has_flag(args, "--json") && has_flag(args, "--csv") {
            return Err("--stream writes one sink at a time (drop --csv or --json)".into());
        }
        let scenarios = grid.scenarios();
        let summary = if let Some(path) = flag_value(args, "--json") {
            let file = std::fs::File::create(path)?;
            let mut out = std::io::BufWriter::new(file);
            let summary = engine.run_streamed_json(&scenarios, &mut out)?;
            println!("JSON streamed to {path}");
            summary
        } else if let Some(path) = flag_value(args, "--csv") {
            let file = std::fs::File::create(path)?;
            let mut out = std::io::BufWriter::new(file);
            let summary = engine.run_streamed(&scenarios, &mut out)?;
            println!("CSV streamed to {path}");
            summary
        } else {
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            engine.run_streamed(&scenarios, &mut out)?
        };
        // stderr, so `mtp sweep --stream > out.csv` stays pure CSV.
        eprintln!("{} ({} worker thread(s))", summary.summary(), engine.threads());
        return Ok(());
    }

    let results = engine.run(&grid);
    print!("{}", results.render());
    if !results.skipped.is_empty() {
        println!("\nskipped scenarios:");
        for s in &results.skipped {
            println!(
                "  {} {} x{} {}: {}",
                s.scenario.config.name,
                s.scenario.mode,
                s.scenario.n_chips,
                s.scenario.topology.label(),
                s.reason
            );
        }
    }
    println!("\n{} ({} worker thread(s))", results.summary(), engine.threads());

    if has_flag(args, "--compare-serial") {
        // Cold engines on both sides so the cache cannot flatter either.
        let serial = SweepEngine::serial().run(&grid);
        let parallel = SweepEngine::new().run(&grid);
        let speedup = serial.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64().max(1e-9);
        println!(
            "serial {:.1} ms vs parallel {:.1} ms on {} thread(s): {speedup:.2}x",
            serial.elapsed.as_secs_f64() * 1e3,
            parallel.elapsed.as_secs_f64() * 1e3,
            SweepEngine::new().threads(),
        );
    }

    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, results.to_csv())?;
        println!("CSV written to {path}");
    }
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, results.to_json())?;
        println!("JSON written to {path}");
    }
    Ok(())
}

/// Builds the serving grid from CLI flags (each axis flag overrides the
/// default grid's axis; shared request-shape flags override in place).
fn build_serve_grid(args: &[String]) -> Result<ServeGrid, String> {
    let mut grid = ServeGrid::paper_default();
    if let Some(models) = list_flag(args, "--models") {
        grid.models = models.into_iter().map(ModelPreset::parse).collect::<Result<_, _>>()?;
    }
    if let Some(chips) = list_flag(args, "--chips") {
        grid.chip_counts = chips
            .into_iter()
            .map(|c| c.parse::<usize>().map_err(|_| format!("bad chip count `{c}`")))
            .collect::<Result<_, _>>()?;
    }
    if let Some(arrivals) = list_flag_semicolon(args, "--arrivals") {
        grid.arrivals =
            arrivals.into_iter().map(ArrivalProcess::parse).collect::<Result<_, _>>()?;
    }
    if let Some(policies) = list_flag(args, "--policies") {
        grid.policies = policies.into_iter().map(BatchPolicy::parse).collect::<Result<_, _>>()?;
    }
    if let Some(billings) = list_flag(args, "--billing") {
        grid.billings = billings.into_iter().map(Billing::parse).collect::<Result<_, _>>()?;
    }
    let positive = |name: &str, v: &str| {
        v.parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad {name} `{v}` (need a positive integer)"))
    };
    if let Some(n) = flag_value(args, "--requests") {
        grid.n_requests = positive("request count", n)?;
    }
    if let Some(p) = flag_value(args, "--prompt-len") {
        grid.prompt_len = positive("prompt length", p)?;
    }
    if let Some(d) = flag_value(args, "--decode-len") {
        grid.decode_len = d
            .parse::<usize>()
            .map_err(|_| format!("bad decode length `{d}` (need a non-negative integer)"))?;
    }
    if let Some(s) = flag_value(args, "--seed") {
        grid.seed = s.parse::<u64>().map_err(|_| format!("bad seed `{s}`"))?;
    }
    if let Some(faults) = list_flag(args, "--faults") {
        grid.faults = faults.into_iter().map(FaultProfile::parse).collect::<Result<_, _>>()?;
    }
    if grid.models.is_empty()
        || grid.chip_counts.is_empty()
        || grid.arrivals.is_empty()
        || grid.policies.is_empty()
        || grid.billings.is_empty()
        || grid.faults.is_empty()
    {
        return Err("the serving grid is empty (every axis needs at least one value)".to_owned());
    }
    Ok(grid)
}

/// Like [`list_flag`] but splits on `;` — arrival specs embed commas
/// (`trace:100,200`), so the axis separator must be something else.
fn list_flag_semicolon<'a>(args: &'a [String], name: &str) -> Option<Vec<&'a str>> {
    flag_value(args, name).map(|v| v.split(';').filter(|s| !s.is_empty()).collect())
}

fn serve_cmd(args: &[String]) -> CliResult {
    let grid = build_serve_grid(args)?;
    let mut engine = ServeEngine::new();
    let results = engine.run(&grid);
    print!("{}", results.render());
    if !results.skipped.is_empty() {
        println!("\nskipped scenarios:");
        for s in &results.skipped {
            println!(
                "  {} x{} {} {}: {}",
                s.scenario.model.cli_name(),
                s.scenario.n_chips,
                s.scenario.process.label(),
                s.scenario.policy.label(),
                s.reason
            );
        }
    }
    println!("\n{}", results.summary());
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, results.to_csv())?;
        println!("CSV written to {path}");
    }
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, results.to_json())?;
        println!("JSON written to {path}");
    }
    Ok(())
}

/// Parses one `--link-bw` item: either a plain percent (`75`) or an
/// inclusive range `LO..HI[:STEP]` (`50..100:5`, step defaults to 1).
fn parse_bw_item(item: &str, out: &mut Vec<u32>) -> Result<(), String> {
    let bad = || format!("bad link bandwidth `{item}` (want PCT or LO..HI[:STEP])");
    if let Some((range, step)) =
        item.split_once("..").map(|(lo, rest)| match rest.split_once(':') {
            Some((hi, step)) => ((lo, hi), step),
            None => ((lo, rest), "1"),
        })
    {
        let lo: u32 = range.0.parse().map_err(|_| bad())?;
        let hi: u32 = range.1.parse().map_err(|_| bad())?;
        let step: u32 = step.parse().map_err(|_| bad())?;
        if lo == 0 || hi < lo || step == 0 {
            return Err(bad());
        }
        out.extend((lo..=hi).step_by(step as usize));
    } else {
        match item.parse::<u32>() {
            Ok(pct) if pct > 0 => out.push(pct),
            _ => return Err(bad()),
        }
    }
    Ok(())
}

fn advise(args: &[String]) -> CliResult {
    let mode = parse_mode(flag_value(args, "--mode").unwrap_or("ar"))?;
    let model = flag_value(args, "--model").unwrap_or("tinyllama");
    let cfg = parse_model(model, mode)?;
    let constraints = advisor::Constraints {
        max_latency_ms: flag_value(args, "--latency-ms").map(str::parse).transpose()?,
        max_energy_mj: flag_value(args, "--energy-mj").map(str::parse).transpose()?,
    };
    let max_chips: usize = flag_value(args, "--max-chips").unwrap_or("64").parse()?;
    let mut space = advisor::DesignSpace::default_for(&cfg, max_chips);
    if let Some(chips) = list_flag(args, "--chips") {
        space.chip_counts = chips
            .into_iter()
            .map(|c| c.parse::<usize>().map_err(|_| format!("bad chip count `{c}`")))
            .collect::<Result<_, _>>()?;
    }
    if let Some(topologies) = list_flag(args, "--topologies") {
        space.topologies =
            topologies.into_iter().map(TopologySpec::parse).collect::<Result<_, _>>()?;
    }
    if let Some(placements) = list_flag(args, "--placements") {
        space.placements =
            placements.into_iter().map(PlacementPolicy::parse).collect::<Result<_, _>>()?;
    }
    if let Some(bws) = list_flag(args, "--link-bw") {
        let mut pcts = Vec::new();
        for item in bws {
            parse_bw_item(item, &mut pcts)?;
        }
        space.link_bw_pcts = pcts;
    }
    let advice = advisor::advise(&cfg, mode, constraints, &space)?;
    print!("{}", advisor::render(&advice, &constraints));
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, advice.to_csv())?;
        println!("CSV written to {path}");
    }
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, advice.to_json())?;
        println!("JSON written to {path}");
    }
    Ok(())
}

fn figures() -> CliResult {
    println!("{}", fig4::render("Fig 4(a): TinyLlama autoregressive (S=128)", &fig4::fig4a()?));
    println!("{}", fig4::render("Fig 4(b): TinyLlama prompt (S=16)", &fig4::fig4b()?));
    println!("{}", fig4::render("Fig 4(c): MobileBERT (S=268)", &fig4::fig4c()?));
    for panel in fig5::run()? {
        println!("{}", fig5::render(&panel));
    }
    println!("{}", fig6::render(&fig6::run()?));
    println!("{}", table1::render(&table1::run(4, InferenceMode::Autoregressive)?));
    println!("{}", headline::render(&headline::run()?));
    Ok(())
}

fn headline_cmd() -> CliResult {
    println!("{}", headline::render(&headline::run()?));
    Ok(())
}

fn ablation_cmd() -> CliResult {
    println!("{}", ablation::render_all()?);
    Ok(())
}

fn bench_cmd(args: &[String]) -> CliResult {
    if has_flag(args, "--calibrate") {
        print!("{}", bench::render_calibration(has_flag(args, "--quick")));
        return Ok(());
    }
    let report = bench::run(has_flag(args, "--quick"));
    print!("{}", report.render());
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, report.to_json())?;
        println!("JSON written to {path}");
    }
    if let Some(path) = flag_value(args, "--compare") {
        let baseline = bench::parse_baseline(&std::fs::read_to_string(path)?)?;
        let comparison = report.compare(&baseline);
        if has_flag(args, "--check") {
            let tolerance: f64 =
                flag_value(args, "--check").ok_or("--check requires a tolerance value")?.parse()?;
            print!("{}", comparison.render_checked(tolerance));
            comparison.check(tolerance)?;
            println!("perf check passed (worst slowdown {:.2}x)", comparison.worst_slowdown());
        } else {
            print!("{}", comparison.render());
        }
    } else if has_flag(args, "--check") {
        return Err("--check requires --compare <BENCH_N.json>".into());
    }
    Ok(())
}

fn table1_cmd(args: &[String]) -> CliResult {
    let chips: usize = flag_value(args, "--chips").unwrap_or("4").parse()?;
    println!("{}", table1::render(&table1::run(chips, InferenceMode::Autoregressive)?));
    Ok(())
}
