//! # mtp — Minimal-Traffic Partitioning for Transformers on MCU networks
//!
//! A Rust implementation of *"Distributed Inference with Minimal Off-Chip
//! Traffic for Transformers on Low-Power MCUs"* (DATE 2025): a
//! tensor-parallel partitioning scheme that scatters a Transformer block's
//! weights across a network of Siracusa-class MCUs with **zero weight
//! replication** and only **two chip synchronizations per block**, so that
//! — given enough chips — inference runs entirely from on-chip memory and
//! achieves super-linear speedups over a single chip.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`tensor`] — dense `f32`/int8 tensor substrate;
//! - [`kernels`] — functional kernels + cluster cycle-cost models;
//! - [`sim`] — event-driven multi-chip MCU simulator;
//! - [`link`] — MIPI link model, group-of-4 topology, collectives;
//! - [`model`] — Transformer configs, weights, golden reference;
//! - [`core`] — the partitioning scheme, schedules, system reports;
//! - [`energy`] — the paper's analytical energy model;
//! - [`harness`] — experiment drivers regenerating every figure/table.
//!
//! # Quickstart
//!
//! ```
//! use mtp::core::DistributedSystem;
//! use mtp::model::{InferenceMode, TransformerConfig};
//!
//! // TinyLlama-42M partitioned over 8 Siracusa chips.
//! let cfg = TransformerConfig::tiny_llama_42m();
//! let system = DistributedSystem::paper_default(cfg.clone(), 8)?;
//! let report = system.simulate_block(InferenceMode::Autoregressive)?;
//!
//! // One Transformer block runs from on-chip memory: super-linear vs 1 chip.
//! let single = DistributedSystem::paper_default(cfg, 1)?
//!     .simulate_block(InferenceMode::Autoregressive)?;
//! assert!(report.speedup_over(&single) > 8.0);
//! # Ok::<(), mtp::core::CoreError>(())
//! ```
//!
//! See `examples/` for runnable scenarios, `DESIGN.md` for the
//! GVSoC-substitution and calibration story, and `mtp headline` for the
//! paper-vs-measured record of every abstract-level claim.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use mtp_core as core;
pub use mtp_energy as energy;
pub use mtp_harness as harness;
pub use mtp_kernels as kernels;
pub use mtp_link as link;
pub use mtp_model as model;
pub use mtp_sim as sim;
pub use mtp_tensor as tensor;
