//! Declarative scenario sweep: what `mtp sweep` does, as a library call.
//!
//! Declares a grid beyond the paper's figures — TinyLlama in prompt mode
//! with the chip-to-chip link at 100% / 50% / 25% of the MIPI bandwidth,
//! on both reduction topologies — runs it through the parallel, cached
//! sweep engine, and prints the table plus the first CSV rows.
//!
//! ```sh
//! cargo run --release --example sweep_grid
//! ```

use mtp::harness::sweep::{SweepEngine, SweepGrid, TopologySpec};
use mtp::model::{InferenceMode, TransformerConfig};

fn main() {
    let grid = SweepGrid::single(
        TransformerConfig::tiny_llama_42m().with_seq_len(16),
        InferenceMode::Prompt,
        vec![1, 2, 4, 8],
    )
    .with_topologies(vec![TopologySpec::PaperDefault, TopologySpec::Flat])
    .with_link_bw_pcts(vec![100, 50, 25]);

    let engine = SweepEngine::new();
    let results = engine.run(&grid);
    print!("{}", results.render());
    println!("\n{} ({} worker thread(s))", results.summary(), engine.threads());

    // The same rows serialize to CSV and JSON for downstream tooling.
    let csv = results.to_csv();
    println!("\nfirst CSV rows:");
    for line in csv.lines().take(4) {
        println!("  {line}");
    }

    // Re-running an overlapping grid is answered from the scenario cache.
    let again = engine.run(&grid);
    assert_eq!(again.cache_hits, results.rows.len());
    assert_eq!(again.unique_simulated, 0);
    println!("\nre-run: {}", again.summary());
}
