//! Design-space advisor walkthrough: which board design should a
//! smart-glasses integrator actually build?
//!
//! The advisor searches topology x placement x chip count x link
//! bandwidth for a model under real-time constraints, scores every
//! point with the closed-form symbolic makespan (DESIGN.md §15 — one
//! simulated warmup per schedule/pricing class, then pure arithmetic),
//! and reports the Pareto frontier over (makespan, energy, chips) plus
//! the smallest feasible system.
//!
//! Run with: `cargo run --release --example design_advisor`

use mtp::harness::advisor::{advise, render, Constraints, DesignSpace};
use mtp::model::{InferenceMode, TransformerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TransformerConfig::tiny_llama_42m();

    // A conversational token budget: 5 ms per autoregressive pass.
    let constraints = Constraints { max_latency_ms: Some(5.0), max_energy_mj: None };

    // The default space under an 8-chip budget, with a finer bandwidth
    // axis: every 5% from 10% to 100% of the paper's MIPI port.
    let mut space = DesignSpace::default_for(&cfg, 8);
    space.link_bw_pcts = (2..=20).map(|s| s * 5).collect();

    let advice = advise(&cfg, InferenceMode::Autoregressive, constraints, &space)?;
    print!("{}", render(&advice, &constraints));

    // The frontier table collapses bandwidth ranges that score
    // identically — the compute-bound side of the link/compute
    // crossover. How cheap can the link get before the 8-chip system
    // leaves its compute-bound plateau?
    let eight_chip_floor = advice
        .candidates
        .iter()
        .filter(|c| c.point.n_chips == 8 && c.feasible)
        .map(|c| c.point.link_bw_pct)
        .min();
    match eight_chip_floor {
        Some(pct) => println!(
            "\ncheapest feasible link for the 8-chip system: {pct}% of the paper's MIPI port"
        ),
        None => println!("\nno 8-chip design meets the constraints"),
    }
    println!(
        "({} design points, {} schedule compilations, {} simulated warmups)",
        advice.candidates.len(),
        advice.compiled,
        advice.warmups
    );
    Ok(())
}
