//! Quickstart: partition TinyLlama-42M over 8 MCUs, check the partition is
//! numerically exact, and simulate one Transformer block.
//!
//! Run with: `cargo run --release --example quickstart`

use mtp::core::{functional::FunctionalSystem, DistributedSystem};
use mtp::model::{reference, InferenceMode, ModelWeights, TransformerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The model and the machine. -----------------------------------
    let cfg = TransformerConfig::tiny_llama_42m();
    println!(
        "model: {} (E={}, F={}, {} heads, {} layers, {} per block)",
        cfg.name,
        cfg.embed_dim,
        cfg.ffn_dim,
        cfg.n_heads,
        cfg.n_layers,
        human_bytes(cfg.block_weight_bytes()),
    );

    // --- 2. Functional check: the distributed execution computes the same
    // values as a single big chip (here on a reduced model so it runs in
    // milliseconds; the full-size equivalence is covered by the test
    // suite).
    let mut small = cfg.clone();
    small.embed_dim = 64;
    small.ffn_dim = 128;
    small.n_layers = 2;
    small.seq_len = 16;
    let weights = ModelWeights::seeded(&small, 7);
    let mut dist = FunctionalSystem::new(small.clone(), &weights, 4)?;
    let x = reference::synthetic_input(1, small.embed_dim, 1);
    let golden = mtp::model::Decoder::new(small, weights).step(&x)?;
    let ours = dist.step(&x)?;
    let diff = ours.max_abs_diff(&golden)?;
    println!("functional check: 4-chip output matches golden reference (max diff {diff:.2e})");

    // --- 3. Timing + energy: one block on 1 vs 8 chips. ------------------
    let single = DistributedSystem::paper_default(cfg.clone(), 1)?;
    let eight = DistributedSystem::paper_default(cfg, 8)?;
    let s1 = single.simulate_block(InferenceMode::Autoregressive)?;
    let s8 = eight.simulate_block(InferenceMode::Autoregressive)?;
    println!("\nsingle chip : {s1}");
    println!("eight chips : {s8}");
    println!(
        "\nspeedup {:.1}x (super-linear: weights now fit on-chip), EDP improvement {:.1}x",
        s8.speedup_over(&s1),
        s8.edp_improvement_over(&s1),
    );
    Ok(())
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}
