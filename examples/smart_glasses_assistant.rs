//! Smart-glasses voice assistant scenario (the paper's motivating
//! application): a user asks a question; the device ingests the prompt and
//! generates a short reply with TinyLlama, entirely on-device.
//!
//! The example budgets a full interaction — prompt ingestion plus
//! token-by-token generation — on a single MCU vs the paper's 8-MCU
//! system, and checks the result against real-time conversational limits.
//!
//! Run with: `cargo run --release --example smart_glasses_assistant`

use mtp::core::DistributedSystem;
use mtp::model::{InferenceMode, TransformerConfig};

const PROMPT_TOKENS: usize = 16; // what the paper's prompt mode processes
const REPLY_TOKENS: usize = 24; // a short spoken answer

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("smart-glasses assistant: \"hey glasses, what does this sign say?\"\n");
    let prompt_cfg = TransformerConfig::tiny_llama_42m().with_seq_len(PROMPT_TOKENS);
    let gen_cfg = TransformerConfig::tiny_llama_42m();

    for n_chips in [1usize, 8] {
        // Prompt ingestion: one prompt-mode pass over all layers.
        let prompt = DistributedSystem::paper_default(prompt_cfg.clone(), n_chips)?
            .simulate_model(InferenceMode::Prompt)?;
        // Generation: one autoregressive full-model pass per reply token.
        let step = DistributedSystem::paper_default(gen_cfg.clone(), n_chips)?
            .simulate_model(InferenceMode::Autoregressive)?;

        let prompt_ms = prompt.runtime_ms();
        let step_ms = step.runtime_ms();
        let total_ms = prompt_ms + step_ms * REPLY_TOKENS as f64;
        let total_mj = prompt.energy_mj() + step.energy_mj() * REPLY_TOKENS as f64;
        let tokens_per_s = 1000.0 / step_ms;

        println!("--- {n_chips} chip(s) ---");
        println!("  prompt ingestion ({PROMPT_TOKENS} tokens): {prompt_ms:8.2} ms");
        println!(
            "  generation ({REPLY_TOKENS} tokens @ {step_ms:.2} ms/token, {tokens_per_s:.0} tok/s)"
        );
        println!("  full reply: {total_ms:8.1} ms, {total_mj:.1} mJ");
        let verdict = if total_ms < 1500.0 { "feels instant" } else { "too slow for dialogue" };
        println!("  user experience: {verdict}\n");
    }

    println!("the 8-chip system turns a sluggish reply into a conversational one");
    println!("while spending a similar amount of energy per answer.");
    Ok(())
}
