//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Run with: `cargo run --release --example paper_figures`

use mtp::harness::{fig4, fig5, fig6, headline, table1};
use mtp::model::InferenceMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", fig4::render("Fig 4(a): TinyLlama autoregressive (S=128)", &fig4::fig4a()?));
    println!("{}", fig4::render("Fig 4(b): TinyLlama prompt (S=16)", &fig4::fig4b()?));
    println!("{}", fig4::render("Fig 4(c): MobileBERT (S=268)", &fig4::fig4c()?));
    for panel in fig5::run()? {
        println!("{}", fig5::render(&panel));
    }
    println!("{}", fig6::render(&fig6::run()?));
    println!("{}", table1::render(&table1::run(4, InferenceMode::Autoregressive)?));
    println!("{}", headline::render(&headline::run()?));
    Ok(())
}
