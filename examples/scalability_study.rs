//! Scalability study (paper Sec. V-C / Fig. 6): the 64-head TinyLlama
//! variant on 2–64 chips, plus the design-choice ablations.
//!
//! Run with: `cargo run --release --example scalability_study`

use mtp::harness::{ablation, fig6};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig = fig6::run()?;
    println!("{}", fig6::render(&fig));
    println!("{}", ablation::render_all()?);
    Ok(())
}
