//! MobileBERT encoder scenario: contextual understanding on smart glasses
//! (e.g. classifying what the wearer is reading). Runs the paper's
//! MobileBERT workload (S = 268) across 1–4 chips, printing the runtime
//! breakdown and energy, and demonstrates the distributed functional
//! executor producing the exact encoder output.
//!
//! Run with: `cargo run --release --example mobilebert_encoder`

use mtp::core::{functional::FunctionalSystem, DistributedSystem};
use mtp::harness::fig4;
use mtp::model::{reference, Encoder, InferenceMode, ModelWeights, TransformerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Timing/energy sweep (paper Fig. 4(c) / 5(c)). --------------------
    let cfg = TransformerConfig::mobile_bert();
    println!(
        "MobileBERT encoder: E=F={}, {} heads, S={}\n",
        cfg.embed_dim, cfg.n_heads, cfg.seq_len
    );
    let mut points = Vec::new();
    for n in [1usize, 2, 4] {
        let r = DistributedSystem::paper_default(cfg.clone(), n)?
            .simulate_block(InferenceMode::Prompt)?;
        points.push(mtp::harness::SweepPoint { n_chips: n, report: r });
    }
    println!("{}", fig4::render("per-block runtime breakdown", &points));

    let base = &points[0].report;
    let four = &points[2].report;
    println!(
        "4-chip speedup: {:.1}x (paper: 4.7x, super-linear by suppressing L3 streaming)\n",
        four.speedup_over(base)
    );

    // --- Functional correctness on a reduced encoder. ---------------------
    let mut small = cfg;
    small.embed_dim = 64;
    small.ffn_dim = 64;
    small.n_layers = 2;
    small.seq_len = 32;
    let weights = ModelWeights::seeded(&small, 99);
    let x = reference::synthetic_input(small.seq_len, small.embed_dim, 5);
    let golden = Encoder::new(small.clone(), weights.clone()).forward(&x)?;
    let mut dist = FunctionalSystem::new(small, &weights, 4)?;
    let out = dist.prompt(&x)?;
    println!(
        "functional check: 4-chip encoder output matches golden (max diff {:.2e})",
        out.max_abs_diff(&golden)?
    );
    Ok(())
}
